#include "sim/self_profiler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

namespace hwatch::sim {
namespace {

TEST(SelfProfiler, DisabledScopeRecordsNothing) {
  SelfProfiler p;
  ASSERT_FALSE(p.enabled());
  { ProfScope scope(p, ProfComponent::kLinkTx); }
  { ProfScope scope(p, ProfComponent::kShim); }
  for (std::size_t c = 0; c < kProfComponents; ++c) {
    EXPECT_EQ(p.stats(static_cast<ProfComponent>(c)).calls, 0u);
  }
}

TEST(SelfProfiler, EnabledScopeAttributesToItsComponent) {
  SelfProfiler p;
  p.set_enabled(true);
  { ProfScope scope(p, ProfComponent::kTcpSender); }
  { ProfScope scope(p, ProfComponent::kTcpSender); }
  { ProfScope scope(p, ProfComponent::kTcpSink); }
  EXPECT_EQ(p.stats(ProfComponent::kTcpSender).calls, 2u);
  EXPECT_EQ(p.stats(ProfComponent::kTcpSink).calls, 1u);
  EXPECT_EQ(p.stats(ProfComponent::kLinkTx).calls, 0u);
  // A recorded handler lands in exactly one histogram bucket per call.
  std::uint64_t bucketed = 0;
  for (std::uint64_t n : p.stats(ProfComponent::kTcpSender).hist) {
    bucketed += n;
  }
  EXPECT_EQ(bucketed, 2u);
  EXPECT_GE(p.stats(ProfComponent::kTcpSender).total_ns,
            p.stats(ProfComponent::kTcpSender).max_ns);
}

TEST(SelfProfiler, ClockIsMonotonic) {
  SelfProfiler p;
  const std::uint64_t a = p.now_ns();
  const std::uint64_t b = p.now_ns();
  EXPECT_GE(b, a);
}

TEST(SelfProfiler, RecordUsesExplicitStart) {
  SelfProfiler p;
  p.set_enabled(true);
  // t0 = 0 makes the measured duration now_ns() itself — a large value
  // that must land in the overflow bucket and set max_ns.
  p.record(ProfComponent::kShim, 0);
  const auto& s = p.stats(ProfComponent::kShim);
  EXPECT_EQ(s.calls, 1u);
  EXPECT_GT(s.max_ns, 0u);
  EXPECT_EQ(s.hist[SelfProfiler::kBuckets], 1u);
}

TEST(SelfProfiler, ReportMentionsComponentsAndEventLoop) {
  SelfProfiler p;
  p.set_enabled(true);
  { ProfScope scope(p, ProfComponent::kLinkTx); }
  EventLoopStats loop;
  loop.events_executed = 1000;
  loop.events_scheduled = 1200;
  loop.heap_peak = 37;
  loop.wall_ns = 5'000'000;
  std::ostringstream os;
  p.report(os, &loop);
  const std::string out = os.str();
  EXPECT_NE(out.find("link_tx"), std::string::npos);
  EXPECT_NE(out.find("self-profile"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
}

TEST(SelfProfiler, BucketBoundsAreAscending) {
  const auto& bounds = SelfProfiler::bucket_bounds_ns();
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ProgressMeter, EnvEnabledSemantics) {
  ::unsetenv("HWATCH_PROGRESS");
  EXPECT_FALSE(ProgressMeter::env_enabled());
  ::setenv("HWATCH_PROGRESS", "", 1);
  EXPECT_FALSE(ProgressMeter::env_enabled());
  ::setenv("HWATCH_PROGRESS", "0", 1);
  EXPECT_FALSE(ProgressMeter::env_enabled());
  ::setenv("HWATCH_PROGRESS", "1", 1);
  EXPECT_TRUE(ProgressMeter::env_enabled());
  ::unsetenv("HWATCH_PROGRESS");
}

TEST(ProgressMeter, TickCountsUnits) {
  ProgressMeter meter(3, "unit-test");
  EXPECT_EQ(meter.done(), 0u);
  meter.tick();
  meter.tick();
  EXPECT_EQ(meter.done(), 2u);
  meter.tick();
  EXPECT_EQ(meter.done(), 3u);
}

}  // namespace
}  // namespace hwatch::sim
