#include <gtest/gtest.h>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace hwatch::sim {
namespace {

TEST(TimeTest, UnitConversionsAreExact) {
  EXPECT_EQ(nanoseconds(1), 1000);
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000'000'000);
  EXPECT_EQ(seconds_i(1), kPsPerSec);
  EXPECT_EQ(seconds(0.5), kPsPerSec / 2);
}

TEST(TimeTest, RoundTripToSeconds) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(200)), 200.0);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(100)), 100.0);
}

TEST(DataRateTest, NamedConstructors) {
  EXPECT_EQ(DataRate::bps(7).bits_per_sec(), 7u);
  EXPECT_EQ(DataRate::kbps(3).bits_per_sec(), 3'000u);
  EXPECT_EQ(DataRate::mbps(3).bits_per_sec(), 3'000'000u);
  EXPECT_EQ(DataRate::gbps(10).bits_per_sec(), 10'000'000'000u);
  EXPECT_DOUBLE_EQ(DataRate::gbps(10).gbits_per_sec(), 10.0);
}

TEST(DataRateTest, TransmissionTimeExactCases) {
  // The paper's key sizes: a 1500-byte frame and a 38-byte probe at 10G.
  EXPECT_EQ(DataRate::gbps(10).transmission_time(1500),
            nanoseconds(1200));
  EXPECT_EQ(DataRate::gbps(10).transmission_time(38), picoseconds(30'400));
  // 1 Gb/s testbed link.
  EXPECT_EQ(DataRate::gbps(1).transmission_time(1500),
            microseconds(12));
}

TEST(DataRateTest, TransmissionTimeRoundsUp) {
  // 1 byte at 3 bps: 8/3 s -> ceil in picoseconds.
  const TimePs t = DataRate::bps(3).transmission_time(1);
  EXPECT_EQ(t, (8 * kPsPerSec + 2) / 3);
}

TEST(DataRateTest, ZeroRateNeverCompletes) {
  EXPECT_EQ(DataRate().transmission_time(1), kTimeNever);
  EXPECT_TRUE(DataRate().is_zero());
}

TEST(DataRateTest, BytesInInterval) {
  EXPECT_EQ(DataRate::gbps(10).bytes_in(microseconds(100)), 125'000u);
  EXPECT_EQ(DataRate::gbps(1).bytes_in(microseconds(200)), 25'000u);
  EXPECT_EQ(DataRate::gbps(10).bytes_in(0), 0u);
}

TEST(DataRateTest, BdpMatchesPaperExamples) {
  // Paper Section IV-E: BDP at 1 Gb/s, RTT 250 us = 31.25 KB.
  EXPECT_EQ(bdp_bytes(DataRate::gbps(1), microseconds(250)), 31'250u);
  // 40 Gb/s -> 1.25 MB; 100 Gb/s -> 3.125 MB.
  EXPECT_EQ(bdp_bytes(DataRate::gbps(40), microseconds(250)), 1'250'000u);
  EXPECT_EQ(bdp_bytes(DataRate::gbps(100), microseconds(250)), 3'125'000u);
}

TEST(DataRateTest, TransmissionTimeLargeValuesNoOverflow) {
  // A 1 GB burst at 1 kb/s: bits * ps/s would overflow 64-bit naively.
  const TimePs t = DataRate::kbps(1).transmission_time(1'000'000'000);
  EXPECT_EQ(t, seconds_i(8'000'000));
}

TEST(DataRateTest, Comparisons) {
  EXPECT_TRUE(DataRate::mbps(1) < DataRate::gbps(1));
  EXPECT_TRUE(DataRate::gbps(1) == DataRate::mbps(1000));
}

}  // namespace
}  // namespace hwatch::sim
