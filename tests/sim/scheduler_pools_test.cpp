// Scheduler callback size classes: tiny timer-style captures must land
// in the small slot pool and packet-carrying captures in the large one,
// with cancellation and FIFO ordering working identically across both.
// Pins the memory thresholds the ScheduleRun/100000 fix relies on — if
// SmallCallback grows past its budget the 4x working-set win is gone.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace hwatch::sim {
namespace {

// The size-class contract, pinned at compile time: a `this` pointer plus
// a couple of words stays small; a by-value net::Packet needs the large
// pool but must still fit inline (the link hot path static_asserts the
// same thing — this keeps the failure local to a unit test).
struct Probe {
  std::uint64_t* counter;
  std::uint64_t a, b;
  void operator()() const { *counter += a + b; }
};
static_assert(Scheduler::SmallCallback::fits_inline<Probe>());
static_assert(sizeof(Scheduler::SmallCallback) <= 48,
              "small slots must stay a fraction of a packet slot");
static_assert(kSchedulerSmallCallbackInline < sizeof(net::Packet),
              "a Packet capture must never route to the small pool");

TEST(SchedulerPoolsTest, RoutesBySizeClass) {
  Scheduler s;
  std::uint64_t hits = 0;
  s.schedule_at(10, Probe{&hits, 1, 2});
  EXPECT_EQ(s.small_slots(), 1u);
  EXPECT_EQ(s.large_slots(), 0u);

  auto big = [&hits, p = net::Packet{}] { hits += p.payload_bytes; };
  static_assert(!Scheduler::SmallCallback::fits_inline<decltype(big)>());
  static_assert(Scheduler::Callback::fits_inline<decltype(big)>());
  s.schedule_at(20, std::move(big));
  EXPECT_EQ(s.small_slots(), 1u);
  EXPECT_EQ(s.large_slots(), 1u);

  // An explicit Callback always takes the large pool.
  s.schedule_at(30, Scheduler::Callback([&hits] { ++hits; }));
  EXPECT_EQ(s.large_slots(), 2u);

  EXPECT_EQ(s.callback_slot_bytes(),
            s.small_slots() * sizeof(Scheduler::SmallCallback) +
                s.large_slots() * sizeof(Scheduler::Callback));
  s.run();
  EXPECT_EQ(s.executed(), 3u);
  EXPECT_EQ(hits, 4u);  // 1+2 from the probe, 0 payload, 1 from the last
}

TEST(SchedulerPoolsTest, FifoAcrossPoolsAtEqualTime) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(5, [&order] { order.push_back(0); });  // small
  s.schedule_at(5, Scheduler::Callback([&order] { order.push_back(1); }));
  s.schedule_at(5, [&order, p = net::Packet{}] {      // large
    order.push_back(2 + static_cast<int>(p.payload_bytes));
  });
  s.schedule_at(5, [&order] { order.push_back(3); });  // small again
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedulerPoolsTest, CancelWorksInBothPools) {
  Scheduler s;
  int fired = 0;
  const EventId small_id = s.schedule_at(10, [&fired] { ++fired; });
  const EventId large_id =
      s.schedule_at(10, [&fired, p = net::Packet{}] { fired += 1 + static_cast<int>(p.uid); });
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_TRUE(s.cancel(small_id));
  EXPECT_TRUE(s.cancel(large_id));
  EXPECT_FALSE(s.cancel(small_id));  // already cancelled
  EXPECT_EQ(s.cancelled(), 2u);
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(SchedulerPoolsTest, SlotsRecycleSteadyState) {
  Scheduler s;
  std::uint64_t hits = 0;
  // Sequential schedule/execute must reuse one slot per pool: slot count
  // tracks peak liveness, not total events.
  for (int i = 0; i < 1000; ++i) {
    s.schedule_at(i, Probe{&hits, 1, 0});
    s.run_until(i);
  }
  EXPECT_EQ(hits, 1000u);
  EXPECT_EQ(s.small_slots(), 1u);
  EXPECT_EQ(s.large_slots(), 0u);
  EXPECT_EQ(s.bookkeeping_slots(), 1u);
}

TEST(SchedulerPoolsTest, BookkeepingTracksPeakLiveEvents) {
  Scheduler s;
  std::uint64_t hits = 0;
  for (int i = 0; i < 64; ++i) s.schedule_at(i, Probe{&hits, 1, 0});
  EXPECT_EQ(s.small_slots(), 64u);
  s.run();
  // Refilling after a full drain reuses the freed slots.
  for (int i = 0; i < 64; ++i) s.schedule_at(100 + i, Probe{&hits, 1, 0});
  EXPECT_EQ(s.small_slots(), 64u);
  s.run();
  EXPECT_EQ(hits, 128u);
}

}  // namespace
}  // namespace hwatch::sim
