// Regression tests for scheduler bookkeeping growth: memory must stay
// proportional to the number of *live* events, not the events ever
// scheduled.  The original implementation kept every scheduled id in a
// side hash set for the lifetime of the scheduler, so a long simulation
// with heavy timer churn (every retransmission timer is scheduled and
// cancelled) grew without bound.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.hpp"

namespace hwatch::sim {
namespace {

TEST(SchedulerMemoryTest, ScheduleCancelCyclesDoNotGrowBookkeeping) {
  Scheduler s;
  // 1M schedule/cancel cycles with at most one live event: slots must be
  // recycled, and cancelled heap entries compacted away.
  constexpr int kCycles = 1'000'000;
  for (int i = 0; i < kCycles; ++i) {
    const EventId id = s.schedule_at(s.now() + 1'000'000, [] {});
    ASSERT_TRUE(s.cancel(id));
  }
  EXPECT_EQ(s.pending(), 0u);
  // One live event at a time -> O(1) slots and compacted structures.
  // total_entries() spans the wheel and the overflow heap; the bounds
  // are loose (compaction is amortized) but far below kCycles.
  EXPECT_LE(s.bookkeeping_slots(), 64u);
  EXPECT_LE(s.total_entries(), 256u);
  s.run();
  EXPECT_EQ(s.now(), 0);  // nothing actually fired
}

TEST(SchedulerMemoryTest, TimerWheelChurnStaysBounded) {
  Scheduler s;
  // Rolling window of 128 pending timers, 200k reschedules: the pattern
  // of RTO/delayed-ack timers in a TCP-heavy run.
  constexpr int kWindow = 128;
  std::vector<EventId> window(kWindow);
  int fired = 0;
  for (int i = 0; i < 200'000; ++i) {
    const int slot = i % kWindow;
    if (window[slot].valid()) s.cancel(window[slot]);
    window[slot] = s.schedule_at(s.now() + 10'000, [&fired] { ++fired; });
    if (slot == 0) s.run_until(s.now() + 100);
  }
  EXPECT_LE(s.bookkeeping_slots(), 4u * kWindow);
  EXPECT_LE(s.total_entries(), 8u * kWindow);
  s.run();
  EXPECT_GT(fired, 0);
}

TEST(SchedulerMemoryTest, ExecutedEventsRecycleSlots) {
  Scheduler s;
  for (int round = 0; round < 1'000; ++round) {
    for (int i = 0; i < 100; ++i) {
      s.schedule_at(s.now() + 1 + i, [] {});
    }
    s.run();
  }
  EXPECT_EQ(s.executed(), 100'000u);
  EXPECT_LE(s.bookkeeping_slots(), 256u);
}

TEST(SchedulerMemoryTest, CancelAfterExecutionReturnsFalse) {
  Scheduler s;
  const EventId id = s.schedule_at(5, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));  // generation was bumped on execution
  // The slot may since be reused; a stale id must not cancel the new
  // occupant.
  const EventId fresh = s.schedule_at(10, [] {});
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(s.cancel(fresh));
}

}  // namespace
}  // namespace hwatch::sim
