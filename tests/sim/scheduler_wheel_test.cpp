// Introspection regression tests for the calendar-wheel front end: the
// split into wheel + overflow heap must stay observable (per-structure
// entry counts) without changing the combined accounting that manifests
// report.  `heap_peak()` is the *combined* parked peak — the same value
// the single-heap scheduler reported — so `sched.heap_peak` in figure
// manifests cannot silently undercount wheel-resident events.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.hpp"

namespace hwatch::sim {
namespace {

TEST(SchedulerWheelTest, NearHorizonEventsParkInWheel) {
  Scheduler s;
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(1'000 + i * kWheelBucketPs, [] {});
  }
  EXPECT_EQ(s.wheel_entries(), 100u);
  EXPECT_EQ(s.heap_entries(), 0u);
  EXPECT_EQ(s.total_entries(), 100u);
  s.run();
  EXPECT_EQ(s.wheel_entries(), 0u);
  EXPECT_EQ(s.total_entries(), 0u);
}

TEST(SchedulerWheelTest, FarFutureEventsOverflowToHeap) {
  Scheduler s;
  // Beyond the wheel span the event must park in the heap...
  s.schedule_at(kWheelSpanPs + 5, [] {});
  EXPECT_EQ(s.wheel_entries(), 0u);
  EXPECT_EQ(s.heap_entries(), 1u);
  // ...and near-horizon traffic keeps using the wheel alongside it.
  s.schedule_at(7, [] {});
  EXPECT_EQ(s.wheel_entries(), 1u);
  EXPECT_EQ(s.total_entries(), 2u);
  s.run();
  EXPECT_EQ(s.total_entries(), 0u);
  EXPECT_EQ(s.executed(), 2u);
}

TEST(SchedulerWheelTest, BucketOverflowSpillsToHeapKeepingFifo) {
  Scheduler s;
  // More same-timestamp events than one bucket can hold: the excess
  // parks in the heap, but execution must still follow insertion order
  // (the (time, seq) tie-break spans both structures).
  constexpr int kBurst = static_cast<int>(kWheelBucketCapacity) + 7;
  std::vector<int> order;
  for (int i = 0; i < kBurst; ++i) {
    s.schedule_at(42'000, [i, &order] { order.push_back(i); });
  }
  EXPECT_EQ(s.wheel_entries(), kWheelBucketCapacity);
  EXPECT_EQ(s.heap_entries(), kBurst - kWheelBucketCapacity);
  s.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerWheelTest, HeapPeakCountsBothStructures) {
  Scheduler s;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(1'000 + i, [] {});                  // wheel
    s.schedule_at(2 * kWheelSpanPs + i, [] {});       // heap
  }
  EXPECT_EQ(s.wheel_entries(), 10u);
  EXPECT_EQ(s.heap_entries(), 10u);
  // Combined peak, not the heap's own max occupancy (which is 10).
  EXPECT_EQ(s.heap_peak(), 20u);
  s.run();
  EXPECT_EQ(s.total_entries(), 0u);
  EXPECT_EQ(s.heap_peak(), 20u);  // peak is sticky
}

TEST(SchedulerWheelTest, CancelledWheelEntriesAreCompactedAway) {
  Scheduler s;
  // Heavy schedule/cancel churn entirely inside the wheel horizon: the
  // parked population must track live events, not events ever parked.
  for (int i = 0; i < 100'000; ++i) {
    const EventId id = s.schedule_at(s.now() + 10'000, [] {});
    ASSERT_TRUE(s.cancel(id));
  }
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_LE(s.total_entries(), 256u);
}

TEST(SchedulerWheelTest, RunUntilJumpsPastWheelSpan) {
  Scheduler s;
  int fired = 0;
  // An event several wheel spans out, reached through big run_until
  // jumps; afterwards the wheel must accept near-horizon events again.
  s.schedule_at(3 * kWheelSpanPs, [&fired] { ++fired; });
  s.run_until(kWheelSpanPs);
  EXPECT_EQ(fired, 0);
  s.run_until(4 * kWheelSpanPs);
  EXPECT_EQ(fired, 1);
  s.schedule_at(s.now() + 5, [&fired] { ++fired; });
  EXPECT_EQ(s.wheel_entries(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace hwatch::sim
