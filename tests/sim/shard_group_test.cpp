// ShardGroup epoch protocol: the drain/run call sequence each task sees
// must be a pure function of (horizon, window) — identical whether the
// group runs sequentially or across worker threads, resumable across
// run() calls, and with errors from any shard rethrown to the caller.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/shard_group.hpp"
#include "sim/time.hpp"

namespace hwatch::sim {
namespace {

struct RecordingTask final : ShardTask {
  struct Call {
    char phase;  // 'd' = drain, 'r' = run
    TimePs t;
    friend bool operator==(const Call&, const Call&) = default;
  };
  std::vector<Call> calls;

  void drain(TimePs window_start) override {
    calls.push_back({'d', window_start});
  }
  void run(TimePs window_end) override { calls.push_back({'r', window_end}); }
};

TEST(ShardGroupTest, SequentialWindowsClampAtHorizon) {
  ShardGroup g(1);
  RecordingTask a;
  RecordingTask b;
  g.add(&a);
  g.add(&b);
  g.run(100, 30);
  // Windows (0,30] (30,60] (60,90] (90,100]: the last clamps to the
  // horizon instead of overshooting it.
  const std::vector<RecordingTask::Call> expect = {
      {'d', 0},  {'r', 30}, {'d', 30}, {'r', 60},
      {'d', 60}, {'r', 90}, {'d', 90}, {'r', 100},
  };
  EXPECT_EQ(a.calls, expect);
  EXPECT_EQ(b.calls, expect);
  EXPECT_EQ(g.epochs(), 4u);
}

TEST(ShardGroupTest, ParallelSeesSameCallSequence) {
  ShardGroup seq(1);
  ShardGroup par(3);
  std::vector<RecordingTask> st(4);
  std::vector<RecordingTask> pt(4);
  for (auto& t : st) seq.add(&t);
  for (auto& t : pt) par.add(&t);
  seq.run(sim::microseconds(1), 70);
  par.run(sim::microseconds(1), 70);
  EXPECT_EQ(seq.epochs(), par.epochs());
  for (std::size_t i = 0; i < st.size(); ++i) {
    EXPECT_EQ(pt[i].calls, st[i].calls) << "shard " << i;
  }
}

TEST(ShardGroupTest, ThreadsAboveShardCountStillAgree) {
  ShardGroup seq(1);
  ShardGroup par(16);  // clamped to the 2 registered shards
  RecordingTask s0, s1, p0, p1;
  seq.add(&s0);
  seq.add(&s1);
  par.add(&p0);
  par.add(&p1);
  seq.run(90, 40);
  par.run(90, 40);
  EXPECT_EQ(p0.calls, s0.calls);
  EXPECT_EQ(p1.calls, s1.calls);
  EXPECT_EQ(par.threads(), 16u);  // the accessor reports the request
}

TEST(ShardGroupTest, ResumesFromPreviousHorizon) {
  ShardGroup g(1);
  RecordingTask t;
  g.add(&t);
  g.run(50, 30);
  EXPECT_EQ(g.epochs(), 2u);
  g.run(100, 30);  // resumes at 50, not at 0
  const std::vector<RecordingTask::Call> expect = {
      {'d', 0},  {'r', 30}, {'d', 30}, {'r', 50},
      {'d', 50}, {'r', 80}, {'d', 80}, {'r', 100},
  };
  EXPECT_EQ(t.calls, expect);
  EXPECT_EQ(g.epochs(), 4u);

  // A horizon at or before the reached time is a no-op.
  g.run(100, 30);
  g.run(60, 30);
  EXPECT_EQ(t.calls.size(), expect.size());
  EXPECT_EQ(g.epochs(), 4u);
}

TEST(ShardGroupTest, RejectsBadArguments) {
  ShardGroup g(2);
  EXPECT_THROW(g.add(nullptr), std::invalid_argument);
  RecordingTask t;
  g.add(&t);
  EXPECT_THROW(g.run(100, 0), std::invalid_argument);
  EXPECT_THROW(g.run(100, -5), std::invalid_argument);
  EXPECT_TRUE(t.calls.empty());  // nothing ran
}

struct ThrowingTask final : ShardTask {
  void drain(TimePs) override {}
  void run(TimePs window_end) override {
    if (window_end >= 60) throw std::runtime_error("shard blew up");
  }
};

TEST(ShardGroupTest, SequentialRethrowsTaskError) {
  ShardGroup g(1);
  ThrowingTask bad;
  g.add(&bad);
  EXPECT_THROW(g.run(100, 30), std::runtime_error);
}

TEST(ShardGroupTest, ParallelRethrowsTaskError) {
  ShardGroup g(2);
  RecordingTask ok;
  ThrowingTask bad;
  g.add(&ok);
  g.add(&bad);
  // Workers keep arriving at the barriers after a failure, so this must
  // rethrow rather than deadlock.
  EXPECT_THROW(g.run(100, 30), std::runtime_error);
}

TEST(ShardGroupTest, EmptyGroupAdvancesTime) {
  ShardGroup g(4);
  g.run(100, 30);
  EXPECT_EQ(g.epochs(), 0u);
  EXPECT_EQ(g.shard_count(), 0u);
}

}  // namespace
}  // namespace hwatch::sim
