// UniqueFunction semantics: move-only captures, the SBO/spill boundary,
// destruction of never-invoked callbacks (the "packet parked in a
// cancelled event" case), and scheduler teardown with packet-carrying
// events still pending.  The ASan CI job doubles as the leak check.
#include "sim/unique_function.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace {

using hwatch::sim::UniqueFunction;

/// Move-only destructor probe: counts exactly one destruction per live
/// object (moved-from husks don't count).
struct DtorCounter {
  int* count = nullptr;
  explicit DtorCounter(int* c) : count(c) {}
  DtorCounter(DtorCounter&& o) noexcept
      : count(std::exchange(o.count, nullptr)) {}
  DtorCounter& operator=(DtorCounter&& o) noexcept {
    if (this != &o) {
      if (count != nullptr) ++*count;
      count = std::exchange(o.count, nullptr);
    }
    return *this;
  }
  DtorCounter(const DtorCounter&) = delete;
  DtorCounter& operator=(const DtorCounter&) = delete;
  ~DtorCounter() {
    if (count != nullptr) ++*count;
  }
};

TEST(UniqueFunctionTest, MoveOnlyCaptureInvokes) {
  auto p = std::make_unique<int>(41);
  UniqueFunction<int()> f = [p = std::move(p)] { return *p + 1; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 42);
  EXPECT_EQ(f(), 42);  // invocable repeatedly
}

TEST(UniqueFunctionTest, EmptyInvocationThrows) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_THROW(f(), std::bad_function_call);
  UniqueFunction<void()> g = [] {};
  g = nullptr;
  EXPECT_THROW(g(), std::bad_function_call);
}

TEST(UniqueFunctionTest, PassesArgumentsAndReturns) {
  UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 40), 42);
  // Move-only arguments pass through the type-erasure boundary.
  UniqueFunction<int(std::unique_ptr<int>)> deref =
      [](std::unique_ptr<int> q) { return *q; };
  EXPECT_EQ(deref(std::make_unique<int>(7)), 7);
}

TEST(UniqueFunctionTest, MoveTransfersOwnership) {
  int destroyed = 0;
  {
    UniqueFunction<int()> a = [d = DtorCounter(&destroyed)] { return 1; };
    UniqueFunction<int()> b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(b(), 1);
    UniqueFunction<int()> c;
    c = std::move(b);
    EXPECT_EQ(c(), 1);
    EXPECT_EQ(destroyed, 0);  // exactly one live instance throughout
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(UniqueFunctionTest, SboBoundary) {
  constexpr std::size_t kInline = 48;
  struct Fits {
    char pad[kInline];
    void operator()() const {}
  };
  struct Spills {
    char pad[kInline + 1];
    void operator()() const {}
  };
  static_assert(UniqueFunction<void(), kInline>::fits_inline<Fits>());
  static_assert(!UniqueFunction<void(), kInline>::fits_inline<Spills>());

  UniqueFunction<void(), kInline> f = Fits{};
  EXPECT_TRUE(f.is_inline());
  UniqueFunction<void(), kInline> g = Spills{};
  EXPECT_FALSE(g.is_inline());
  f();
  g();
}

TEST(UniqueFunctionTest, SpilledCallableInvokesAndDestroys) {
  int destroyed = 0;
  long sum = 0;
  {
    struct Big {
      DtorCounter d;
      long vals[32];
    };
    Big big{DtorCounter(&destroyed), {}};
    for (int i = 0; i < 32; ++i) big.vals[i] = i;
    UniqueFunction<void()> f = [big = std::move(big), &sum] {
      for (long v : big.vals) sum += v;
    };
    EXPECT_FALSE(f.is_inline());
    f();
    // Moving a spilled callable moves the pointer, not the payload.
    UniqueFunction<void()> g = std::move(f);
    g();
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(sum, 2 * 31 * 32 / 2);
}

TEST(UniqueFunctionTest, NeverInvokedPacketCallbackIsDestroyed) {
  // The cancelled-event case: a callback carrying a Packet by value is
  // destroyed without ever being invoked; nothing leaks (ASan-enforced)
  // and the probe's destructor runs exactly once.
  int destroyed = 0;
  {
    hwatch::net::Packet pkt;
    pkt.payload_bytes = 1442;
    hwatch::sim::Scheduler::Callback cb =
        [pkt, d = DtorCounter(&destroyed)]() mutable { (void)pkt; };
    EXPECT_TRUE(cb.is_inline());  // a Packet rides in the SBO buffer
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(UniqueFunctionTest, AssignmentDestroysPrevious) {
  int first = 0;
  int second = 0;
  UniqueFunction<void()> f = [d = DtorCounter(&first)] {};
  f = [d = DtorCounter(&second)] {};
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 0);
  f.reset();
  EXPECT_EQ(second, 1);
}

TEST(UniqueFunctionTest, NonTriviallyCopyableInlineRelocates) {
  std::string s = "relocate me through the inline buffer";
  UniqueFunction<std::string()> f = [s = std::move(s)] { return s; };
  EXPECT_TRUE(f.is_inline());
  UniqueFunction<std::string()> g = std::move(f);
  EXPECT_EQ(g(), "relocate me through the inline buffer");
}

TEST(UniqueFunctionTest, WrapsStdFunction) {
  std::function<int()> sf = [] { return 9; };
  UniqueFunction<int()> f = std::move(sf);
  EXPECT_EQ(f(), 9);
}

TEST(UniqueFunctionTest, ConstSignatureInvocableThroughConstRef) {
  const UniqueFunction<int() const> f = [] { return 7; };
  EXPECT_EQ(f(), 7);
  UniqueFunction<int() const> g = [] { return 8; };
  const auto& ref = g;
  EXPECT_EQ(ref(), 8);
}

// ---- scheduler interaction ------------------------------------------

TEST(SchedulerCallbackLifetime, CancelDestroysCallbackEagerly) {
  hwatch::sim::Scheduler sched;
  int destroyed = 0;
  const hwatch::sim::EventId id =
      sched.schedule_at(100, [d = DtorCounter(&destroyed)] {});
  EXPECT_EQ(destroyed, 0);
  EXPECT_TRUE(sched.cancel(id));
  // Cancel must release captured resources immediately, not when the
  // stale heap entry surfaces or the slot is reused.
  EXPECT_EQ(destroyed, 1);
  sched.run();
}

TEST(SchedulerCallbackLifetime, TeardownDestroysPendingPacketEvents) {
  int destroyed = 0;
  {
    hwatch::sim::Scheduler sched;
    for (int i = 0; i < 16; ++i) {
      hwatch::net::Packet pkt;
      pkt.uid = static_cast<std::uint64_t>(i);
      pkt.payload_bytes = 1000;
      sched.schedule_at(1000 + i,
                        [pkt, d = DtorCounter(&destroyed)]() mutable {
                          (void)pkt;
                        });
    }
    sched.run_until(500);  // nothing due yet; all 16 still pending
    EXPECT_EQ(sched.pending(), 16u);
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 16);
}

TEST(SchedulerCallbackLifetime, SlotReuseAfterExecuteAndCancel) {
  hwatch::sim::Scheduler sched;
  int fired = 0;
  int destroyed = 0;
  for (int round = 0; round < 100; ++round) {
    const auto keep =
        sched.schedule_in(1, [&fired, d = DtorCounter(&destroyed)] {
          ++fired;
        });
    const auto drop =
        sched.schedule_in(2, [&fired, d = DtorCounter(&destroyed)] {
          ++fired;
        });
    EXPECT_TRUE(sched.cancel(drop));
    sched.run();
    (void)keep;
  }
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(destroyed, 200);  // every callback destroyed exactly once
  // Slots were recycled, not accumulated.
  EXPECT_LE(sched.bookkeeping_slots(), 4u);
}

}  // namespace
