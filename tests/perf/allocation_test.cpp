// Allocation-regression harness: a counting global operator new proves
// the steady-state packet hop (enqueue -> tx -> propagate -> deliver,
// plus the TCP agents at both ends) touches the heap zero times.
//
// Build note: this file replaces the global allocation functions, so it
// lives in its own test binary (test_alloc) — linking it into a shared
// test runner would make every suite count through it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace {
std::atomic<std::uint64_t> g_new_calls{0};

std::uint64_t new_calls() {
  return g_new_calls.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#include "net/network.hpp"
#include "net/queue.hpp"
#include "net/shard_channel.hpp"
#include "sim/context.hpp"
#include "tcp/connection.hpp"
#include "topo/dumbbell.hpp"
#include "topo/shard.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace hwatch;

/// Dumbbell with 4 long-lived DCTCP flows across the bottleneck,
/// metrics and tracing off — the paper scenarios' steady state.  DCTCP
/// step marking keeps the 250-packet buffer around K=50, so the run is
/// lossless: pure data/ACK clocking, every hop down the fast path.
TEST(AllocationRegression, SteadyStateHopIsAllocationFree) {
  sim::SimContext ctx(7);
  net::Network net(ctx);
  topo::DumbbellConfig tcfg;
  tcfg.pairs = 4;
  tcfg.edge_qdisc = net::make_dctcp_factory(250, 50);
  tcfg.bottleneck_qdisc = net::make_dctcp_factory(250, 50);
  topo::Dumbbell bell = topo::build_dumbbell(net, tcfg);

  tcp::TcpConfig t;
  t.ecn = tcp::EcnMode::kDctcp;
  std::vector<std::unique_ptr<tcp::TcpConnection>> flows;
  for (std::uint32_t i = 0; i < tcfg.pairs; ++i) {
    flows.push_back(std::make_unique<tcp::TcpConnection>(
        net, *bell.left[i], *bell.right[i],
        static_cast<std::uint16_t>(1000 + i),
        static_cast<std::uint16_t>(2000 + i), tcp::Transport::kDctcp, t));
    flows.back()->start(tcp::TcpSender::kUnlimited);
  }

  sim::Scheduler& sched = ctx.scheduler();
  // Warm-up: handshakes, slow start, and every grow-only structure
  // (scheduler heap/slots, qdisc rings, agent maps) reaching its
  // steady-state high-water mark.
  sched.run_until(sim::milliseconds(50));

  const std::uint64_t events_before = sched.executed();
  const std::uint64_t allocs_before = new_calls();
  sched.run_until(sim::milliseconds(100));
  const std::uint64_t events = sched.executed() - events_before;
  const std::uint64_t allocs = new_calls() - allocs_before;

  // Sanity: the window actually carried steady-state traffic.
  EXPECT_GT(events, 50'000u);
  for (const auto& f : flows) {
    EXPECT_GT(f->sink().stats().bytes_received, 1'000'000u);
  }
  // The acceptance criterion: zero heap allocations across every packet
  // hop in the measurement window.
  EXPECT_EQ(allocs, 0u) << "steady-state hops allocated " << allocs
                        << " times over " << events << " events";
}

/// Sharded fat-tree slice: a k=4 fabric (16 hosts, 8 edge shards) with
/// one long-lived cross-shard DCTCP flow per host, driven through the
/// same conservative drain/run epoch protocol the ShardGroup workers
/// execute.  Proves the wheel and packet-train paths stay
/// allocation-free under PDES epochs — window-boundary run_until jumps,
/// cross-shard inbox pushes at tx-complete, and inbox drains included —
/// not just in the single-context dumbbell.
TEST(AllocationRegression, ShardedSteadyStateEpochsAreAllocationFree) {
  topo::ShardedFatTreeConfig tcfg;
  tcfg.k = 4;
  tcfg.qdisc = net::make_dctcp_factory(250, 50);
  tcfg.seed = 7;
  topo::ShardedFatTree tree = topo::build_sharded_fat_tree(tcfg);
  const std::size_t shards = tree.shards.size();
  ASSERT_GT(shards, 1u);

  // Permutation workload, every flow cross-shard capable and long-lived.
  tcp::TcpConfig t;
  t.ecn = tcp::EcnMode::kDctcp;
  std::vector<std::unique_ptr<workload::TrafficManager>> tms;
  for (std::size_t s = 0; s < shards; ++s) {
    tms.push_back(
        std::make_unique<workload::TrafficManager>(*tree.shards[s].net));
  }
  const std::size_t n_hosts = tree.hosts.size();
  const std::uint32_t hosts_per_edge = tree.plan.hosts_per_edge;
  for (std::size_t i = 0; i < n_hosts; ++i) {
    const std::size_t j = (i + n_hosts / 2 + 1) % n_hosts;
    workload::FlowSpec spec;
    spec.src = tree.hosts[i];
    spec.dst = tree.hosts[j];
    spec.dst_net = tree.shards[j / hosts_per_edge].net.get();
    spec.dst_port = tms[j / hosts_per_edge]->next_port(*spec.dst);
    spec.transport = tcp::Transport::kDctcp;
    spec.tcp = t;
    spec.bytes = tcp::TcpSender::kUnlimited;
    spec.klass = stats::FlowClass::kLong;
    tms[i / hosts_per_edge]->add_flow(spec);
  }

  // The sequential arm of the ShardGroup epoch protocol: drain every
  // shard's ingress at the window start barrier, then run every shard
  // to the window end.
  std::vector<std::vector<std::pair<net::Node*, net::ShardInbox::Item>>>
      scratch(shards);
  auto run_epochs_until = [&](sim::TimePs horizon) {
    sim::TimePs t = tree.shards[0].ctx->scheduler().now();
    while (t < horizon) {
      const sim::TimePs end = std::min(horizon, t + tree.lookahead);
      for (std::size_t s = 0; s < shards; ++s) {
        net::drain_cross_shard_channels(tree.shards[s].ingress, scratch[s]);
      }
      for (std::size_t s = 0; s < shards; ++s) {
        tree.shards[s].ctx->scheduler().run_until(end);
      }
      t = end;
    }
  };

  // Warm-up: handshakes, slow start, and every grow-only structure
  // (wheel slab, flight rings, inbox rings, pools) reaching its peak.
  run_epochs_until(sim::milliseconds(20));

  std::uint64_t events_before = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    events_before += tree.shards[s].ctx->scheduler().executed();
  }
  const std::uint64_t allocs_before = new_calls();
  run_epochs_until(sim::milliseconds(40));
  std::uint64_t events = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    events += tree.shards[s].ctx->scheduler().executed();
  }
  events -= events_before;
  const std::uint64_t allocs = new_calls() - allocs_before;

  EXPECT_GT(events, 50'000u);
  EXPECT_EQ(allocs, 0u) << "sharded steady-state epochs allocated " << allocs
                        << " times over " << events << " events";
}

/// The counting hook itself works — otherwise the zero above proves
/// nothing.
TEST(AllocationRegression, HookCountsAllocations) {
  const std::uint64_t before = new_calls();
  auto* p = new int(1);
  delete p;
  std::vector<int> v(1000);
  v.clear();
  EXPECT_GE(new_calls() - before, 2u);
}

}  // namespace
