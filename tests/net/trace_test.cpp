#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "sim/json.hpp"
#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::net {
namespace {

using tcp::testutil::TwoHostNet;

tcp::TcpConfig quick_cfg() {
  tcp::TcpConfig c;
  c.min_rto = sim::milliseconds(10);
  c.initial_rto = sim::milliseconds(10);
  c.ecn = tcp::EcnMode::kNone;
  return c;
}

TEST(TracerTest, RecordsBothDirectionsOfAConnection) {
  TwoHostNet h;
  PacketTracer tracer(h.ctx);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(3 * 1442);
  h.sched.run_until(sim::milliseconds(100));

  const auto& c = tracer.counts();
  EXPECT_EQ(c.syn, 2u);   // SYN out + SYN-ACK in
  EXPECT_EQ(c.data, 3u);  // three segments out
  EXPECT_EQ(c.fin, 1u);
  EXPECT_GE(c.acks, 4u);  // handshake ack + per-segment acks
  EXPECT_FALSE(tracer.truncated());

  // The first entry is the outbound SYN, timestamped at t=0.
  ASSERT_FALSE(tracer.entries().empty());
  EXPECT_TRUE(tracer.entries()[0].outbound);
  EXPECT_TRUE(tracer.entries()[0].packet.is_syn());
  EXPECT_EQ(tracer.entries()[0].time, 0);
}

TEST(TracerTest, PredicateFilters) {
  TwoHostNet h;
  TracerConfig cfg;
  cfg.predicate = [](const Packet& p) { return p.is_data(); };
  PacketTracer tracer(h.ctx, std::move(cfg));
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(5 * 1442);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(tracer.total_seen(), 5u);
  for (const auto& e : tracer.entries()) {
    EXPECT_TRUE(e.packet.is_data());
  }
}

TEST(TracerTest, MaxEntriesTruncatesButKeepsCounting) {
  TwoHostNet h;
  TracerConfig cfg;
  cfg.max_entries = 3;
  PacketTracer tracer(h.ctx, std::move(cfg));
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(10 * 1442);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(tracer.entries().size(), 3u);
  EXPECT_TRUE(tracer.truncated());
  EXPECT_GT(tracer.total_seen(), 3u);
}

TEST(TracerTest, DumpFormatsOneLinePerPacket) {
  TwoHostNet h;
  PacketTracer tracer(h.ctx);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(1442);
  h.sched.run_until(sim::milliseconds(100));
  std::ostringstream os;
  tracer.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("SYN"), std::string::npos);
  EXPECT_NE(out.find("DATA"), std::string::npos);
  EXPECT_NE(out.find(" + "), std::string::npos);
  EXPECT_NE(out.find(" - "), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(out.begin(), out.end(), '\n')),
            tracer.entries().size());
}

TEST(TracerTest, ClearResets) {
  TwoHostNet h;
  PacketTracer tracer(h.ctx);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(1442);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_GT(tracer.total_seen(), 0u);
  tracer.clear();
  EXPECT_EQ(tracer.total_seen(), 0u);
  EXPECT_TRUE(tracer.entries().empty());
}

// Regression: clear() used to reset entries and total_seen but leave
// the per-kind counts, so a cleared tracer reported stale SYN/data
// tallies.
TEST(TracerTest, ClearResetsCounts) {
  TwoHostNet h;
  PacketTracer tracer(h.ctx);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(3 * 1442);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_GT(tracer.counts().syn, 0u);
  EXPECT_GT(tracer.counts().data, 0u);
  tracer.clear();
  EXPECT_EQ(tracer.counts().syn, 0u);
  EXPECT_EQ(tracer.counts().data, 0u);
  EXPECT_EQ(tracer.counts().acks, 0u);
  EXPECT_EQ(tracer.counts().fin, 0u);
  EXPECT_EQ(tracer.counts().probes, 0u);
  EXPECT_EQ(tracer.counts().ce_marked, 0u);
}

TEST(TracerTest, JsonlStreamingBypassesMaxEntries) {
  TwoHostNet h;
  std::ostringstream jsonl;
  TracerConfig cfg;
  cfg.max_entries = 2;  // tiny in-memory cap; the stream sees everything
  cfg.jsonl_sink = &jsonl;
  PacketTracer tracer(h.ctx, std::move(cfg));
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(5 * 1442);
  h.sched.run_until(sim::milliseconds(100));

  EXPECT_EQ(tracer.entries().size(), 2u);
  const std::string out = jsonl.str();
  const auto lines = static_cast<std::uint64_t>(
      std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(lines, tracer.total_seen());
}

TEST(TracerTest, JsonlLinesParseAndCarryPacketFields) {
  TwoHostNet h;
  std::ostringstream jsonl;
  TracerConfig cfg;
  cfg.jsonl_sink = &jsonl;
  PacketTracer tracer(h.ctx, std::move(cfg));
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(1442);
  h.sched.run_until(sim::milliseconds(100));

  std::istringstream in(jsonl.str());
  std::string line;
  std::size_t parsed = 0;
  bool saw_syn = false;
  while (std::getline(in, line)) {
    std::string err;
    const sim::Json j = sim::Json::parse(line, &err);
    ASSERT_TRUE(err.empty()) << err << " in: " << line;
    ASSERT_TRUE(j.is_object());
    for (const char* key :
         {"t_ps", "dir", "uid", "kind", "src", "dst", "sport", "dport",
          "seq", "ack", "flags", "payload", "wire", "ecn", "rwnd"}) {
      EXPECT_NE(j.find(key), nullptr) << "missing " << key;
    }
    if (j.find("flags")->as_string().find('S') != std::string::npos) {
      saw_syn = true;
      EXPECT_EQ(j.find("kind")->as_string(), "tcp");
    }
    ++parsed;
  }
  EXPECT_EQ(parsed, tracer.total_seen());
  EXPECT_TRUE(saw_syn);
}

// dump_jsonl replays the in-memory entries in the same line format.
TEST(TracerTest, DumpJsonlMatchesStreamedPrefix) {
  TwoHostNet h;
  std::ostringstream streamed;
  TracerConfig cfg;
  cfg.jsonl_sink = &streamed;
  PacketTracer tracer(h.ctx, std::move(cfg));
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(2 * 1442);
  h.sched.run_until(sim::milliseconds(100));

  std::ostringstream dumped;
  tracer.dump_jsonl(dumped);
  EXPECT_EQ(dumped.str(), streamed.str());
}

}  // namespace
}  // namespace hwatch::net
