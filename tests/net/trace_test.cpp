#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tcp/tcp_test_util.hpp"
#include "tcp/connection.hpp"

namespace hwatch::net {
namespace {

using tcp::testutil::TwoHostNet;

tcp::TcpConfig quick_cfg() {
  tcp::TcpConfig c;
  c.min_rto = sim::milliseconds(10);
  c.initial_rto = sim::milliseconds(10);
  c.ecn = tcp::EcnMode::kNone;
  return c;
}

TEST(TracerTest, RecordsBothDirectionsOfAConnection) {
  TwoHostNet h;
  PacketTracer tracer(h.ctx);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(3 * 1442);
  h.sched.run_until(sim::milliseconds(100));

  const auto& c = tracer.counts();
  EXPECT_EQ(c.syn, 2u);   // SYN out + SYN-ACK in
  EXPECT_EQ(c.data, 3u);  // three segments out
  EXPECT_EQ(c.fin, 1u);
  EXPECT_GE(c.acks, 4u);  // handshake ack + per-segment acks
  EXPECT_FALSE(tracer.truncated());

  // The first entry is the outbound SYN, timestamped at t=0.
  ASSERT_FALSE(tracer.entries().empty());
  EXPECT_TRUE(tracer.entries()[0].outbound);
  EXPECT_TRUE(tracer.entries()[0].packet.is_syn());
  EXPECT_EQ(tracer.entries()[0].time, 0);
}

TEST(TracerTest, PredicateFilters) {
  TwoHostNet h;
  TracerConfig cfg;
  cfg.predicate = [](const Packet& p) { return p.is_data(); };
  PacketTracer tracer(h.ctx, cfg);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(5 * 1442);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(tracer.total_seen(), 5u);
  for (const auto& e : tracer.entries()) {
    EXPECT_TRUE(e.packet.is_data());
  }
}

TEST(TracerTest, MaxEntriesTruncatesButKeepsCounting) {
  TwoHostNet h;
  TracerConfig cfg;
  cfg.max_entries = 3;
  PacketTracer tracer(h.ctx, cfg);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(10 * 1442);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(tracer.entries().size(), 3u);
  EXPECT_TRUE(tracer.truncated());
  EXPECT_GT(tracer.total_seen(), 3u);
}

TEST(TracerTest, DumpFormatsOneLinePerPacket) {
  TwoHostNet h;
  PacketTracer tracer(h.ctx);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(1442);
  h.sched.run_until(sim::milliseconds(100));
  std::ostringstream os;
  tracer.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("SYN"), std::string::npos);
  EXPECT_NE(out.find("DATA"), std::string::npos);
  EXPECT_NE(out.find(" + "), std::string::npos);
  EXPECT_NE(out.find(" - "), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(out.begin(), out.end(), '\n')),
            tracer.entries().size());
}

TEST(TracerTest, ClearResets) {
  TwoHostNet h;
  PacketTracer tracer(h.ctx);
  h.a->install_filter(&tracer);
  tcp::TcpConnection conn(h.net, *h.a, *h.b, 1000, 80,
                          tcp::Transport::kNewReno, quick_cfg());
  conn.start(1442);
  h.sched.run_until(sim::milliseconds(100));
  EXPECT_GT(tracer.total_seen(), 0u);
  tracer.clear();
  EXPECT_EQ(tracer.total_seen(), 0u);
  EXPECT_TRUE(tracer.entries().empty());
}

}  // namespace
}  // namespace hwatch::net
