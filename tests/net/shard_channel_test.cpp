// Cross-shard channel plumbing: the SPSC inbox (ring + counted spill
// overflow) and the drain pass that turns a window's haul into local
// scheduler events in (deliver_time, packet uid) order.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/shard_channel.hpp"
#include "sim/context.hpp"

namespace hwatch::net {
namespace {

Packet make_packet(std::uint64_t uid) {
  Packet p;
  p.uid = uid;
  return p;
}

TEST(ShardInboxTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardInbox(1).capacity(), 2u);
  EXPECT_EQ(ShardInbox(2).capacity(), 2u);
  EXPECT_EQ(ShardInbox(3).capacity(), 4u);
  EXPECT_EQ(ShardInbox(4).capacity(), 4u);
  EXPECT_EQ(ShardInbox(1000).capacity(), 1024u);
}

TEST(ShardInboxTest, PushPopRoundTrip) {
  ShardInbox box(4);
  for (std::uint64_t i = 0; i < 3; ++i) {
    box.push(static_cast<sim::TimePs>(100 + i), make_packet(i));
  }
  EXPECT_EQ(box.pushed(), 3u);
  EXPECT_EQ(box.spilled(), 0u);
  ShardInbox::Item item;
  // FIFO through the ring.
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(box.pop(item));
    EXPECT_EQ(item.pkt.uid, i);
    EXPECT_EQ(item.deliver_time, static_cast<sim::TimePs>(100 + i));
  }
  EXPECT_FALSE(box.pop(item));
  EXPECT_EQ(box.popped(), 3u);
  EXPECT_TRUE(box.ring_empty());
}

TEST(ShardInboxTest, OverflowSpillsInsteadOfDropping) {
  ShardInbox box(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    box.push(10, make_packet(i));
  }
  EXPECT_EQ(box.pushed(), 7u);
  EXPECT_EQ(box.spilled(), 3u);  // ring holds 4, the rest spill
  std::vector<std::uint64_t> uids;
  ShardInbox::Item item;
  while (box.pop(item)) uids.push_back(item.pkt.uid);
  EXPECT_EQ(uids.size(), 7u);  // every push surfaces exactly once
  EXPECT_EQ(box.popped(), 7u);
  // The ring drains FIFO before the spill; the spill's own order is
  // unspecified (the drain pass sorts), so only check the ring prefix.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(uids[i], i);

  // The ring is usable again after a full drain.
  box.push(11, make_packet(42));
  ASSERT_TRUE(box.pop(item));
  EXPECT_EQ(item.pkt.uid, 42u);
}

TEST(ShardChannelTest, NullDestinationNodeThrows) {
  sim::SimContext ctx;
  EXPECT_THROW(CrossShardChannel(ctx, nullptr), std::invalid_argument);
}

TEST(ShardChannelDrainTest, DeliversSortedByTimeThenUid) {
  sim::SimContext ctx;
  Network net(ctx);
  Host& h = net.add_host("h");
  std::vector<std::pair<sim::TimePs, std::uint64_t>> arrivals;
  const std::uint16_t port = 7;
  h.bind(port, [&](Packet&& p) { arrivals.emplace_back(ctx.now(), p.uid); });

  CrossShardChannel ch(ctx, &h, 8);
  const std::vector<std::pair<sim::TimePs, std::uint64_t>> items = {
      {200, 5}, {100, 9}, {200, 1}, {100, 2}};
  for (auto [t, uid] : items) {
    Packet p = make_packet(uid);
    p.ip.dst = h.id();
    p.tcp.dst_port = port;
    ch.inbox().push(t, std::move(p));
  }

  std::vector<CrossShardChannel*> channels = {&ch};
  std::vector<std::pair<Node*, ShardInbox::Item>> scratch;
  drain_cross_shard_channels(channels, scratch);
  EXPECT_TRUE(scratch.empty());  // reusable after the pass
  EXPECT_EQ(ctx.scheduler().pending(), 4u);
  ctx.scheduler().run();

  const std::vector<std::pair<sim::TimePs, std::uint64_t>> expect = {
      {100, 2}, {100, 9}, {200, 1}, {200, 5}};
  EXPECT_EQ(arrivals, expect);
}

TEST(ShardChannelDrainTest, MergesAcrossChannelsAndSpill) {
  sim::SimContext ctx;
  Network net(ctx);
  Host& h = net.add_host("h");
  std::vector<std::uint64_t> arrivals;
  const std::uint16_t port = 7;
  h.bind(port, [&](Packet&& p) { arrivals.push_back(p.uid); });

  // Tiny ring so channel A overflows into its spill vector: the sorted
  // drain order must be identical no matter which path an item took.
  CrossShardChannel a(ctx, &h, 2);
  CrossShardChannel b(ctx, &h, 8);
  auto push = [&](CrossShardChannel& ch, std::uint64_t uid) {
    Packet p = make_packet(uid);
    p.ip.dst = h.id();
    p.tcp.dst_port = port;
    ch.inbox().push(50, std::move(p));
  };
  for (std::uint64_t uid : {9u, 3u, 7u, 1u}) push(a, uid);
  for (std::uint64_t uid : {8u, 2u}) push(b, uid);
  EXPECT_GT(a.inbox().spilled(), 0u);

  std::vector<CrossShardChannel*> channels = {&a, &b};
  std::vector<std::pair<Node*, ShardInbox::Item>> scratch;
  drain_cross_shard_channels(channels, scratch);
  ctx.scheduler().run();
  EXPECT_EQ(arrivals, (std::vector<std::uint64_t>{1, 2, 3, 7, 8, 9}));
}

TEST(ShardChannelDrainTest, EmptyDrainIsANoOp) {
  sim::SimContext ctx;
  Network net(ctx);
  Host& h = net.add_host("h");
  CrossShardChannel ch(ctx, &h, 4);
  std::vector<CrossShardChannel*> none;
  std::vector<CrossShardChannel*> empty_channel = {&ch};
  std::vector<std::pair<Node*, ShardInbox::Item>> scratch;
  drain_cross_shard_channels(none, scratch);
  drain_cross_shard_channels(empty_channel, scratch);
  EXPECT_EQ(ctx.scheduler().pending(), 0u);
}

}  // namespace
}  // namespace hwatch::net
