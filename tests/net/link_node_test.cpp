#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "sim/scheduler.hpp"

namespace hwatch::net {
namespace {

/// Test node that records everything it receives.
class SinkNode final : public Node {
 public:
  using Node::Node;
  void handle_packet(Packet&& p) override {
    arrivals.push_back(std::move(p));
    times.push_back(when);
  }
  std::vector<Packet> arrivals;
  std::vector<sim::TimePs> times;
  sim::TimePs when = 0;  // unused; arrival time read from scheduler in test
};

Packet sized_packet(std::uint32_t payload, std::uint64_t uid = 0) {
  Packet p;
  p.uid = uid;
  p.payload_bytes = payload;
  return p;
}

TEST(LinkTest, DeliversAfterSerializationPlusPropagation) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode dst(0, "dst");
  Link link(ctx, "l", sim::DataRate::gbps(10), sim::microseconds(10),
            std::make_unique<DropTailQueue>(16), &dst);
  link.transmit(sized_packet(1442));  // 1500 B: 1.2 us at 10G
  sched.run();
  ASSERT_EQ(dst.arrivals.size(), 1u);
  EXPECT_EQ(sched.now(), sim::nanoseconds(1200) + sim::microseconds(10));
}

TEST(LinkTest, SerializesBackToBack) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode dst(0, "dst");
  Link link(ctx, "l", sim::DataRate::gbps(10), 0,
            std::make_unique<DropTailQueue>(16), &dst);
  for (int i = 0; i < 3; ++i) link.transmit(sized_packet(1442, i));
  sched.run();
  ASSERT_EQ(dst.arrivals.size(), 3u);
  // Three serializations, no propagation: 3 * 1.2 us total.
  EXPECT_EQ(sched.now(), sim::nanoseconds(3600));
  EXPECT_EQ(dst.arrivals[0].uid, 0u);
  EXPECT_EQ(dst.arrivals[2].uid, 2u);
}

TEST(LinkTest, PipelinesAcrossPropagation) {
  // With propagation larger than serialization, packets overlap in
  // flight: total time = N*tx + prop, not N*(tx+prop).
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode dst(0, "dst");
  Link link(ctx, "l", sim::DataRate::gbps(10), sim::microseconds(100),
            std::make_unique<DropTailQueue>(64), &dst);
  for (int i = 0; i < 10; ++i) link.transmit(sized_packet(1442, i));
  sched.run();
  EXPECT_EQ(sched.now(),
            10 * sim::nanoseconds(1200) + sim::microseconds(100));
}

TEST(LinkTest, BusyTimeAccumulatesExactly) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode dst(0, "dst");
  Link link(ctx, "l", sim::DataRate::gbps(10), 0,
            std::make_unique<DropTailQueue>(64), &dst);
  for (int i = 0; i < 5; ++i) link.transmit(sized_packet(1442));
  sched.run();
  EXPECT_EQ(link.busy_time(), 5 * sim::nanoseconds(1200));
  EXPECT_EQ(link.bytes_delivered(), 5u * 1500u);
  EXPECT_EQ(link.packets_delivered(), 5u);
}

TEST(LinkTest, QueueOverflowDropsAndCountsAreConsistent) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode dst(0, "dst");
  Link link(ctx, "l", sim::DataRate::gbps(1), 0,
            std::make_unique<DropTailQueue>(4), &dst);
  // Burst of 20 into a 4-deep queue; one is in the transmitter.
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (link.transmit(sized_packet(1442)) != EnqueueOutcome::kDropped) {
      ++accepted;
    }
  }
  sched.run();
  EXPECT_EQ(dst.arrivals.size(), static_cast<std::size_t>(accepted));
  EXPECT_EQ(link.qdisc().stats().dropped, 20u - accepted);
  // Queue admits 4, the head starts transmitting freeing a slot; a few
  // more than 4 may be accepted depending on timing, but never all 20.
  EXPECT_GE(accepted, 4);
  EXPECT_LT(accepted, 20);
}

TEST(SwitchTest, ForwardsByDestination) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode a(10, "a"), b(11, "b");
  Switch sw(0, "sw");
  Link to_a(ctx, "sw->a", sim::DataRate::gbps(10), 0,
            std::make_unique<DropTailQueue>(16), &a);
  Link to_b(ctx, "sw->b", sim::DataRate::gbps(10), 0,
            std::make_unique<DropTailQueue>(16), &b);
  sw.add_route(10, &to_a);
  sw.add_route(11, &to_b);

  Packet p1 = sized_packet(100, 1);
  p1.ip.dst = 10;
  Packet p2 = sized_packet(100, 2);
  p2.ip.dst = 11;
  sw.handle_packet(std::move(p1));
  sw.handle_packet(std::move(p2));
  sched.run();
  ASSERT_EQ(a.arrivals.size(), 1u);
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(a.arrivals[0].uid, 1u);
  EXPECT_EQ(b.arrivals[0].uid, 2u);
  EXPECT_EQ(sw.forwarded(), 2u);
}

TEST(SwitchTest, DropsRoutelessPackets) {
  Switch sw(0, "sw");
  Packet p = sized_packet(100);
  p.ip.dst = 99;
  sw.handle_packet(std::move(p));
  EXPECT_EQ(sw.routeless_drops(), 1u);
}

TEST(SwitchTest, TtlExpiryDrops) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode a(10, "a");
  Switch sw(0, "sw");
  Link to_a(ctx, "sw->a", sim::DataRate::gbps(10), 0,
            std::make_unique<DropTailQueue>(16), &a);
  sw.add_route(10, &to_a);
  Packet p = sized_packet(100);
  p.ip.dst = 10;
  p.ip.ttl = 0;
  sw.handle_packet(std::move(p));
  sched.run();
  EXPECT_TRUE(a.arrivals.empty());
  EXPECT_EQ(sw.routeless_drops(), 1u);
}

TEST(SwitchTest, EcmpKeepsFlowOnOnePath) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  SinkNode dst(10, "dst");
  Switch sw(0, "sw");
  Link path1(ctx, "p1", sim::DataRate::gbps(10), 0,
             std::make_unique<DropTailQueue>(64), &dst);
  Link path2(ctx, "p2", sim::DataRate::gbps(10), 0,
             std::make_unique<DropTailQueue>(64), &dst);
  sw.add_route(10, &path1);
  sw.add_route(10, &path2);

  auto send_flow = [&](std::uint16_t sport, int n) {
    for (int i = 0; i < n; ++i) {
      Packet p = sized_packet(100);
      p.ip.src = 1;
      p.ip.dst = 10;
      p.tcp.src_port = sport;
      p.tcp.dst_port = 80;
      sw.handle_packet(std::move(p));
    }
  };
  send_flow(1000, 10);
  sched.run();
  // All ten packets of one flow take the same path.
  EXPECT_TRUE(path1.packets_delivered() == 10 ||
              path2.packets_delivered() == 10);

  // Many flows spread across both paths.
  for (std::uint16_t sp = 2000; sp < 2064; ++sp) send_flow(sp, 1);
  sched.run();
  EXPECT_GT(path1.packets_delivered(), 10u);
  EXPECT_GT(path2.packets_delivered(), 0u);
}

// ---------------------------------------------------------------- Host

class RecordingFilter final : public PacketFilter {
 public:
  FilterVerdict on_outbound(Packet& p) override {
    ++outbound;
    return verdict_out(p);
  }
  FilterVerdict on_inbound(Packet& p) override {
    ++inbound;
    return verdict_in(p);
  }
  std::function<FilterVerdict(Packet&)> verdict_out =
      [](Packet&) { return FilterVerdict::kPass; };
  std::function<FilterVerdict(Packet&)> verdict_in =
      [](Packet&) { return FilterVerdict::kPass; };
  int outbound = 0;
  int inbound = 0;
};

struct HostFixture : ::testing::Test {
  HostFixture()
      : host(1, "h"),
        peer(2, "peer"),
        nic(ctx, "h->peer", sim::DataRate::gbps(10), 0,
            std::make_unique<DropTailQueue>(16), &peer) {
    host.set_nic(&nic);
  }
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  Host host;
  SinkNode peer;
  Link nic;
};

TEST_F(HostFixture, DemuxesByDestinationPort) {
  std::vector<std::uint64_t> got_a, got_b;
  host.bind(80, [&](Packet&& p) { got_a.push_back(p.uid); });
  host.bind(81, [&](Packet&& p) { got_b.push_back(p.uid); });
  Packet p = sized_packet(10, 7);
  p.tcp.dst_port = 81;
  host.handle_packet(std::move(p));
  EXPECT_TRUE(got_a.empty());
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b[0], 7u);
  EXPECT_EQ(host.delivered(), 1u);
}

TEST_F(HostFixture, UnboundPortCountsDrop) {
  Packet p = sized_packet(10);
  p.tcp.dst_port = 9999;
  host.handle_packet(std::move(p));
  EXPECT_EQ(host.no_agent_drops(), 1u);
}

TEST_F(HostFixture, DoubleBindThrows) {
  host.bind(80, [](Packet&&) {});
  EXPECT_THROW(host.bind(80, [](Packet&&) {}), std::invalid_argument);
  host.unbind(80);
  EXPECT_NO_THROW(host.bind(80, [](Packet&&) {}));
}

TEST_F(HostFixture, OutboundFilterSeesAgentTraffic) {
  RecordingFilter f;
  host.install_filter(&f);
  host.send(sized_packet(10));
  sched.run();
  EXPECT_EQ(f.outbound, 1);
  EXPECT_EQ(peer.arrivals.size(), 1u);
}

TEST_F(HostFixture, SendRawBypassesFilters) {
  RecordingFilter f;
  host.install_filter(&f);
  host.send_raw(sized_packet(10));
  sched.run();
  EXPECT_EQ(f.outbound, 0);
  EXPECT_EQ(peer.arrivals.size(), 1u);
}

TEST_F(HostFixture, FilterDropIsCounted) {
  RecordingFilter f;
  f.verdict_out = [](Packet&) { return FilterVerdict::kDrop; };
  host.install_filter(&f);
  host.send(sized_packet(10));
  sched.run();
  EXPECT_TRUE(peer.arrivals.empty());
  EXPECT_EQ(host.filter_drops(), 1u);
}

TEST_F(HostFixture, FilterConsumeAbsorbsWithoutDropCount) {
  RecordingFilter f;
  f.verdict_in = [](Packet&) { return FilterVerdict::kConsume; };
  host.install_filter(&f);
  host.bind(80, [](Packet&&) { FAIL() << "must not reach the agent"; });
  Packet p = sized_packet(10);
  p.tcp.dst_port = 80;
  host.handle_packet(std::move(p));
  EXPECT_EQ(host.filter_drops(), 0u);
  EXPECT_EQ(host.delivered(), 0u);
}

TEST_F(HostFixture, FilterChainRunsInOrderAndCanModify) {
  RecordingFilter first, second;
  first.verdict_in = [](Packet& p) {
    p.tcp.rwnd_raw = 42;
    return FilterVerdict::kPass;
  };
  host.install_filter(&first);
  host.install_filter(&second);
  std::uint16_t seen = 0;
  host.bind(80, [&](Packet&& p) { seen = p.tcp.rwnd_raw; });
  Packet p = sized_packet(10);
  p.tcp.dst_port = 80;
  host.handle_packet(std::move(p));
  EXPECT_EQ(first.inbound, 1);
  EXPECT_EQ(second.inbound, 1);
  EXPECT_EQ(seen, 42);
}

// ------------------------------------------------------------- Network

TEST(NetworkTest, RoutesAcrossDumbbellCore) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  Network net(ctx);
  Host& a = net.add_host("a");
  Host& b = net.add_host("b");
  Switch& s1 = net.add_switch("s1");
  Switch& s2 = net.add_switch("s2");
  auto q = make_droptail_factory(16);
  net.connect(a, s1, sim::DataRate::gbps(10), 0, q);
  net.connect(b, s2, sim::DataRate::gbps(10), 0, q);
  net.connect(s1, s2, sim::DataRate::gbps(10), 0, q);
  net.compute_routes();

  bool arrived = false;
  b.bind(80, [&](Packet&&) { arrived = true; });
  Packet p;
  p.ip.src = a.id();
  p.ip.dst = b.id();
  p.tcp.dst_port = 80;
  a.send(std::move(p));
  sched.run();
  EXPECT_TRUE(arrived);
}

TEST(NetworkTest, HostsDoNotTransit) {
  // a - h - b in a line: h is a *host* in the middle; routes must not
  // exist through it, so a cannot reach b.
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  Network net(ctx);
  Host& a = net.add_host("a");
  Host& middle = net.add_host("middle");
  Host& b = net.add_host("b");
  Switch& s1 = net.add_switch("s1");
  Switch& s2 = net.add_switch("s2");
  auto q = make_droptail_factory(16);
  net.connect(a, s1, sim::DataRate::gbps(1), 0, q);
  net.connect(s1, middle, sim::DataRate::gbps(1), 0, q);
  net.connect(middle, s2, sim::DataRate::gbps(1), 0, q);
  net.connect(s2, b, sim::DataRate::gbps(1), 0, q);
  net.compute_routes();

  bool arrived = false;
  b.bind(80, [&](Packet&&) { arrived = true; });
  Packet p;
  p.ip.src = a.id();
  p.ip.dst = b.id();
  p.tcp.dst_port = 80;
  a.send(std::move(p));
  sched.run();
  EXPECT_FALSE(arrived);
}

TEST(NetworkTest, LinkBetweenFindsDirectedLinks) {
  sim::SimContext ctx;
  Network net(ctx);
  Host& a = net.add_host("a");
  Switch& s = net.add_switch("s");
  auto duplex =
      net.connect(a, s, sim::DataRate::gbps(1), 0, make_droptail_factory(4));
  EXPECT_EQ(net.link_between(a.id(), s.id()), duplex.forward);
  EXPECT_EQ(net.link_between(s.id(), a.id()), duplex.backward);
  EXPECT_EQ(net.link_between(a.id(), 77), nullptr);
}

TEST(NetworkTest, PacketUidsAreUnique) {
  sim::SimContext ctx;
  Network net(ctx);
  const auto u1 = net.next_packet_uid();
  const auto u2 = net.next_packet_uid();
  EXPECT_NE(u1, u2);
}

TEST(NetworkTest, NodeLookupAndCounts) {
  sim::SimContext ctx;
  Network net(ctx);
  Host& a = net.add_host("a");
  Switch& s = net.add_switch("s");
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.host(a.id()), &a);
  EXPECT_EQ(net.host(s.id()), nullptr);  // a switch is not a host
  EXPECT_EQ(net.node(99), nullptr);
  EXPECT_EQ(net.hosts().size(), 1u);
  EXPECT_EQ(net.switches().size(), 1u);
}

}  // namespace
}  // namespace hwatch::net
