#include "net/queue.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace hwatch::net {
namespace {

Packet data_packet(Ecn ecn = Ecn::kEct0, std::uint32_t payload = 1442) {
  Packet p;
  p.ip.ecn = ecn;
  p.payload_bytes = payload;
  return p;
}

// ------------------------------------------------------------ DropTail

TEST(DropTailTest, AcceptsUntilCapacityThenDrops) {
  DropTailQueue q(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kAccepted);
  }
  EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kDropped);
  EXPECT_EQ(q.len_packets(), 3u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 3u);
}

TEST(DropTailTest, NeverMarks) {
  DropTailQueue q(100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.enqueue(data_packet(Ecn::kEct0), 0),
              EnqueueOutcome::kAccepted);
  }
  EXPECT_EQ(q.stats().ecn_marked, 0u);
}

TEST(DropTailTest, FifoOrder) {
  DropTailQueue q(10);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Packet p = data_packet();
    p.uid = i;
    q.enqueue(std::move(p), 0);
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue(0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST(DropTailTest, ByteAccounting) {
  DropTailQueue q(10);
  q.enqueue(data_packet(Ecn::kNotEct, 1442), 0);  // 1500 B frame
  q.enqueue(data_packet(Ecn::kNotEct, 0), 0);     // 58 B ACK frame
  EXPECT_EQ(q.len_bytes(), 1558u);
  q.dequeue(0);
  EXPECT_EQ(q.len_bytes(), 58u);
}

TEST(DropTailTest, StatsTrackMaxima) {
  DropTailQueue q(10);
  for (int i = 0; i < 7; ++i) q.enqueue(data_packet(), 0);
  for (int i = 0; i < 7; ++i) q.dequeue(0);
  EXPECT_EQ(q.stats().max_len_pkts, 7u);
  EXPECT_EQ(q.stats().dequeued, 7u);
  EXPECT_TRUE(q.empty());
}

// --------------------------------------------------------- DCTCP step

TEST(DctcpQueueTest, MarksAboveThresholdOnly) {
  DctcpThresholdQueue q(100, 5);
  // First 5 arrivals: queue after enqueue is 1..5 -> no marks.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kAccepted);
  }
  // 6th arrival: queue would be 6 > K=5 -> marked.
  EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kAcceptedMarked);
  EXPECT_EQ(q.stats().ecn_marked, 1u);
}

TEST(DctcpQueueTest, MarkSetsCePoint) {
  DctcpThresholdQueue q(100, 0);  // mark everything
  q.enqueue(data_packet(Ecn::kEct0), 0);
  auto p = q.dequeue(0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ip.ecn, Ecn::kCe);
}

TEST(DctcpQueueTest, NonEctPacketsAreNotMarked) {
  DctcpThresholdQueue q(100, 0);
  EXPECT_EQ(q.enqueue(data_packet(Ecn::kNotEct), 0),
            EnqueueOutcome::kAccepted);
  auto p = q.dequeue(0);
  EXPECT_EQ(p->ip.ecn, Ecn::kNotEct);
}

TEST(DctcpQueueTest, DropsAtCapacityEvenWithEcn) {
  DctcpThresholdQueue q(2, 1);
  q.enqueue(data_packet(), 0);
  q.enqueue(data_packet(), 0);
  EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kDropped);
}

TEST(DctcpQueueTest, InstantaneousBehaviour) {
  // Draining below K stops marking immediately (no EWMA memory).
  DctcpThresholdQueue q(100, 2);
  q.enqueue(data_packet(), 0);
  q.enqueue(data_packet(), 0);
  EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kAcceptedMarked);
  q.dequeue(0);
  q.dequeue(0);
  EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kAccepted);
}

// ----------------------------------------------------------------- RED

RedConfig red_cfg() {
  RedConfig c;
  c.min_th_pkts = 5;
  c.max_th_pkts = 15;
  c.max_p = 0.1;
  c.weight = 1.0;  // avg == instantaneous, for deterministic testing
  c.gentle = true;
  c.ecn = true;
  return c;
}

TEST(RedQueueTest, BelowMinThresholdNeverMarks) {
  RedQueue q(100, red_cfg());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kAccepted);
  }
  EXPECT_EQ(q.stats().ecn_marked, 0u);
}

TEST(RedQueueTest, MarksProbabilisticallyBetweenThresholds) {
  RedQueue q(1000, red_cfg());
  int marked = 0;
  // Hold the queue around 10 packets: enqueue/dequeue in lockstep after
  // filling to 10.
  for (int i = 0; i < 10; ++i) q.enqueue(data_packet(), 0);
  for (int i = 0; i < 2000; ++i) {
    if (q.enqueue(data_packet(), 0) == EnqueueOutcome::kAcceptedMarked) {
      ++marked;
    }
    q.dequeue(0);
  }
  // p_b ~ 0.05 at avg=10; count correction raises the effective rate.
  EXPECT_GT(marked, 30);
  EXPECT_LT(marked, 600);
}

TEST(RedQueueTest, AboveGentleRegionMarksEverything) {
  auto cfg = red_cfg();
  RedQueue q(1000, cfg);
  for (int i = 0; i < 31; ++i) q.enqueue(data_packet(), 0);
  // avg is now > 2*max_th = 30: every ECT arrival is marked.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.enqueue(data_packet(), 0),
              EnqueueOutcome::kAcceptedMarked);
  }
}

TEST(RedQueueTest, NonEctIsDroppedInsteadOfMarked) {
  auto cfg = red_cfg();
  RedQueue q(1000, cfg);
  for (int i = 0; i < 35; ++i) q.enqueue(data_packet(), 0);
  EXPECT_EQ(q.enqueue(data_packet(Ecn::kNotEct), 0),
            EnqueueOutcome::kDropped);
}

TEST(RedQueueTest, EcnDisabledDropsEct) {
  auto cfg = red_cfg();
  cfg.ecn = false;
  RedQueue q(1000, cfg);
  for (int i = 0; i < 35; ++i) {
    q.enqueue(data_packet(), 0);
  }
  EXPECT_EQ(q.enqueue(data_packet(Ecn::kEct0), 0),
            EnqueueOutcome::kDropped);
}

TEST(RedQueueTest, HardCapacityStillEnforced) {
  RedQueue q(3, red_cfg());
  for (int i = 0; i < 3; ++i) q.enqueue(data_packet(), 0);
  EXPECT_EQ(q.enqueue(data_packet(), 0), EnqueueOutcome::kDropped);
}

TEST(RedQueueTest, AverageTracksQueue) {
  auto cfg = red_cfg();
  cfg.weight = 0.5;
  RedQueue q(1000, cfg);
  q.enqueue(data_packet(), 0);
  q.enqueue(data_packet(), 0);
  q.enqueue(data_packet(), 0);
  EXPECT_GT(q.avg(), 0.0);
  EXPECT_LT(q.avg(), 3.0);
}

TEST(RedQueueTest, IdleDecayReducesAverage) {
  auto cfg = red_cfg();
  cfg.weight = 0.1;
  cfg.mean_pkt_time = sim::microseconds(1);
  RedQueue q(1000, cfg);
  for (int i = 0; i < 20; ++i) q.enqueue(data_packet(), 0);
  const double avg_loaded = q.avg();
  while (!q.empty()) q.dequeue(sim::microseconds(1));
  // Long idle period, then one arrival: the decayed average must be far
  // below the loaded value.
  q.enqueue(data_packet(), sim::milliseconds(10));
  EXPECT_LT(q.avg(), avg_loaded / 4);
}

TEST(RedQueueTest, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    RedQueue q(1000, red_cfg(), seed);
    std::uint64_t marks = 0;
    for (int i = 0; i < 10; ++i) q.enqueue(data_packet(), 0);
    for (int i = 0; i < 500; ++i) {
      if (q.enqueue(data_packet(), 0) == EnqueueOutcome::kAcceptedMarked) {
        ++marks;
      }
      q.dequeue(0);
    }
    return marks;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(99));  // overwhelmingly likely
}

// Property sweep: no queue discipline may ever exceed its capacity or
// lose track of byte counts.
class QueueCapacityProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(QueueCapacityProperty, NeverExceedsCapacityAndConserves) {
  const auto [kind, cap] = GetParam();
  std::unique_ptr<QueueDiscipline> q;
  switch (kind) {
    case 0:
      q = std::make_unique<DropTailQueue>(cap);
      break;
    case 1:
      q = std::make_unique<DctcpThresholdQueue>(cap, cap / 4);
      break;
    default:
      q = std::make_unique<RedQueue>(cap, red_cfg());
      break;
  }
  std::uint64_t x = 42;
  std::uint64_t in = 0, out = 0, dropped = 0;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1;
    if (x % 3 != 0) {
      if (q->enqueue(data_packet(), static_cast<sim::TimePs>(i)) ==
          EnqueueOutcome::kDropped) {
        ++dropped;
      } else {
        ++in;
      }
    } else if (q->dequeue(static_cast<sim::TimePs>(i))) {
      ++out;
    }
    ASSERT_LE(q->len_packets(), cap);
  }
  EXPECT_EQ(in, out + q->len_packets());
  EXPECT_EQ(q->stats().dropped, dropped);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueues, QueueCapacityProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<std::uint64_t>(1, 8, 250)));

}  // namespace
}  // namespace hwatch::net
