#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"

namespace hwatch::net {
namespace {

Packet sample_packet() {
  Packet p;
  p.ip.src = 3;
  p.ip.dst = 9;
  p.ip.ecn = Ecn::kEct0;
  p.tcp.src_port = 1024;
  p.tcp.dst_port = 80;
  p.tcp.seq = 123456;
  p.tcp.ack = 789;
  p.tcp.ack_flag = true;
  p.tcp.rwnd_raw = 4321;
  p.tcp.wscale = 6;
  p.payload_bytes = 1442;
  return p;
}

TEST(PacketTest, FrameSizesMatchPaper) {
  Packet data = sample_packet();
  EXPECT_EQ(data.size_bytes(), 1500u);  // full segment = 1500 B
  Packet ack = sample_packet();
  ack.payload_bytes = 0;
  EXPECT_EQ(ack.size_bytes(), kTcpFrameOverhead);
  Packet probe;
  probe.kind = PacketKind::kProbe;
  EXPECT_EQ(probe.size_bytes(), 38u);  // Probe1 = ETH + IP headers only
}

TEST(PacketTest, Classification) {
  Packet p = sample_packet();
  EXPECT_TRUE(p.is_data());
  EXPECT_FALSE(p.is_pure_ack());
  p.payload_bytes = 0;
  EXPECT_TRUE(p.is_pure_ack());
  p.tcp.syn = true;
  EXPECT_FALSE(p.is_pure_ack());
  EXPECT_TRUE(p.is_syn());
  Packet probe;
  probe.kind = PacketKind::kProbe;
  EXPECT_FALSE(probe.is_data());
}

TEST(PacketTest, EcnCapability) {
  EXPECT_FALSE(ecn_capable(Ecn::kNotEct));
  EXPECT_TRUE(ecn_capable(Ecn::kEct0));
  EXPECT_TRUE(ecn_capable(Ecn::kEct1));
  EXPECT_TRUE(ecn_capable(Ecn::kCe));
}

TEST(PacketTest, DescribeNamesSegmentTypes) {
  Packet p = sample_packet();
  EXPECT_NE(p.describe().find("DATA"), std::string::npos);
  p.payload_bytes = 0;
  EXPECT_NE(p.describe().find("ACK"), std::string::npos);
  p.tcp.syn = true;
  EXPECT_NE(p.describe().find("SYNACK"), std::string::npos);
  p.tcp.ack_flag = false;
  EXPECT_NE(p.describe().find("SYN"), std::string::npos);
  Packet probe;
  probe.kind = PacketKind::kProbe;
  EXPECT_NE(probe.describe().find("PROBE"), std::string::npos);
}

TEST(FlowKeyTest, ReversedSwapsEndpoints) {
  FlowKey k{1, 2, 100, 200};
  FlowKey r = k.reversed();
  EXPECT_EQ(r.src, 2u);
  EXPECT_EQ(r.dst, 1u);
  EXPECT_EQ(r.src_port, 200);
  EXPECT_EQ(r.dst_port, 100);
  EXPECT_EQ(r.reversed(), k);
}

TEST(FlowKeyTest, HashDistinguishesPortsAndNodes) {
  FlowKeyHash h;
  FlowKey a{1, 2, 100, 200};
  EXPECT_NE(h(a), h(FlowKey{1, 2, 101, 200}));
  EXPECT_NE(h(a), h(FlowKey{1, 3, 100, 200}));
  EXPECT_NE(h(a), h(a.reversed()));
  EXPECT_EQ(h(a), h(FlowKey{1, 2, 100, 200}));
}

TEST(ChecksumTest, StampAndVerifyRoundTrip) {
  Packet p = sample_packet();
  stamp_checksum(p);
  EXPECT_TRUE(verify_checksum(p));
}

TEST(ChecksumTest, DetectsFieldCorruption) {
  Packet p = sample_packet();
  stamp_checksum(p);
  p.tcp.rwnd_raw ^= 0x0010;
  EXPECT_FALSE(verify_checksum(p));
}

TEST(ChecksumTest, DetectsSeqCorruption) {
  Packet p = sample_packet();
  stamp_checksum(p);
  p.tcp.seq += 1;
  EXPECT_FALSE(verify_checksum(p));
}

TEST(ChecksumTest, DetectsFlagFlip) {
  Packet p = sample_packet();
  stamp_checksum(p);
  p.tcp.ece = !p.tcp.ece;
  EXPECT_FALSE(verify_checksum(p));
}

TEST(ChecksumTest, IncrementalAdjustMatchesRecompute) {
  // This is the exact operation the HWatch shim performs when it
  // rewrites the receive window in flight.
  Packet p = sample_packet();
  stamp_checksum(p);
  const std::uint16_t old_raw = p.tcp.rwnd_raw;
  const std::uint16_t new_raw = 17;
  p.tcp.checksum = checksum_adjust(p.tcp.checksum, old_raw, new_raw);
  p.tcp.rwnd_raw = new_raw;
  EXPECT_TRUE(verify_checksum(p));
  EXPECT_EQ(p.tcp.checksum, tcp_checksum(p));
}

TEST(ChecksumTest, IncrementalAdjustManyValues) {
  Packet p = sample_packet();
  stamp_checksum(p);
  for (std::uint32_t v : {0u, 1u, 255u, 4097u, 65534u, 65535u}) {
    p.tcp.checksum = checksum_adjust(p.tcp.checksum, p.tcp.rwnd_raw,
                                     static_cast<std::uint16_t>(v));
    p.tcp.rwnd_raw = static_cast<std::uint16_t>(v);
    EXPECT_TRUE(verify_checksum(p)) << "rwnd=" << v;
  }
}

TEST(ChecksumTest, ChecksumFieldItselfExcluded) {
  Packet p = sample_packet();
  const std::uint16_t c1 = tcp_checksum(p);
  p.tcp.checksum = 0xABCD;  // garbage in the field must not matter
  EXPECT_EQ(tcp_checksum(p), c1);
}

}  // namespace
}  // namespace hwatch::net
