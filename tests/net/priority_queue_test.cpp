#include "net/priority_queue.hpp"

#include <gtest/gtest.h>

namespace hwatch::net {
namespace {

Packet pkt(std::uint8_t dscp, std::uint64_t uid,
           std::uint32_t payload = 1442) {
  Packet p;
  p.uid = uid;
  p.ip.dscp = dscp;
  p.payload_bytes = payload;
  return p;
}

TEST(PriorityQueueTest, HighBandServedFirst) {
  PriorityQueue q(QueueLimits::in_packets(16));
  q.enqueue(pkt(0, 1), 0);
  q.enqueue(pkt(0, 2), 0);
  q.enqueue(pkt(1, 3), 0);  // high priority, arrives last
  q.enqueue(pkt(0, 4), 0);
  q.enqueue(pkt(1, 5), 0);
  std::vector<std::uint64_t> order;
  while (auto p = q.dequeue(0)) order.push_back(p->uid);
  // Note: packet 1 was already first in line when 3 arrived... strict
  // priority reorders only the *queue*; order is 3,5 then 1,2,4 FIFO.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 5, 1, 2, 4}));
}

TEST(PriorityQueueTest, FifoWithinEachBand) {
  PriorityQueue q(QueueLimits::in_packets(16));
  for (std::uint64_t i = 0; i < 3; ++i) q.enqueue(pkt(1, 10 + i), 0);
  for (std::uint64_t i = 0; i < 3; ++i) q.enqueue(pkt(0, 20 + i), 0);
  std::vector<std::uint64_t> order;
  while (auto p = q.dequeue(0)) order.push_back(p->uid);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{10, 11, 12, 20, 21, 22}));
}

TEST(PriorityQueueTest, UrgentArrivalPushesOutBestEffort) {
  // pFabric-style preemptive drop: a high-band arrival to a full buffer
  // evicts the most recent best-effort packet instead of being refused.
  PriorityQueue q(QueueLimits::in_packets(4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.enqueue(pkt(0, i), 0), EnqueueOutcome::kAccepted);
  }
  EXPECT_EQ(q.enqueue(pkt(1, 99), 0), EnqueueOutcome::kAccepted);
  EXPECT_EQ(q.stats().dropped, 1u);  // the evicted best-effort packet
  EXPECT_EQ(q.len_packets(), 4u);
  // The urgent packet is served first; uid 3 (evicted) never appears.
  std::vector<std::uint64_t> order;
  while (auto p = q.dequeue(0)) order.push_back(p->uid);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{99, 0, 1, 2}));
}

TEST(PriorityQueueTest, FullHighBandRefusesFurtherUrgents) {
  PriorityQueue q(QueueLimits::in_packets(3));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.enqueue(pkt(1, i), 0), EnqueueOutcome::kAccepted);
  }
  // Nothing evictable: both bands full of urgent traffic.
  EXPECT_EQ(q.enqueue(pkt(1, 99), 0), EnqueueOutcome::kDropped);
  EXPECT_EQ(q.enqueue(pkt(0, 98), 0), EnqueueOutcome::kDropped);
  EXPECT_EQ(q.stats().dropped, 2u);
}

TEST(PriorityQueueTest, InterleavedChurnKeepsInvariant) {
  PriorityQueue q(QueueLimits::in_packets(64));
  std::uint64_t x = 5;
  int uid = 0;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ull + 1;
    if (x % 3 != 0) {
      q.enqueue(pkt(x % 2 ? 1 : 0, uid++), i);
    } else if (auto p = q.dequeue(i)) {
      // Invariant: when a best-effort packet is served, no high-band
      // packet is waiting.
      if (p->ip.dscp == 0) {
        // peek: drain-and-restore is overkill; use len bookkeeping —
        // instead dequeue the next and verify it isn't high while this
        // one was low *and* was queued after it; simpler: rely on the
        // ordering tests above.  Here just check conservation.
      }
    }
    ASSERT_LE(q.len_packets(), 64u);
  }
  // Conservation with push-out: packets admitted either left through
  // dequeue, still wait, or were evicted (a subset of the drop count).
  const std::uint64_t evicted =
      q.stats().enqueued - q.stats().dequeued - q.len_packets();
  EXPECT_LE(evicted, q.stats().dropped);
}

TEST(PriorityQueueTest, Name) {
  PriorityQueue q(QueueLimits::in_packets(4));
  EXPECT_EQ(q.name(), "priority2");
}

}  // namespace
}  // namespace hwatch::net
