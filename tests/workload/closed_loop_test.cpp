// Closed-loop request generator: sequential fetches per slot, load
// self-regulation, think times.
#include <gtest/gtest.h>

#include "topo/dumbbell.hpp"
#include "workload/traffic.hpp"

namespace hwatch::workload {
namespace {

struct ClosedLoopFixture : ::testing::Test {
  ClosedLoopFixture() : network(ctx) {
    topo::DumbbellConfig cfg;
    cfg.pairs = 4;
    cfg.edge_qdisc = net::make_droptail_factory(512);
    cfg.bottleneck_qdisc = net::make_droptail_factory(512);
    d = topo::build_dumbbell(network, cfg);
  }
  tcp::TcpConfig quick() {
    tcp::TcpConfig t;
    t.min_rto = sim::milliseconds(10);
    t.initial_rto = sim::milliseconds(10);
    t.ecn = tcp::EcnMode::kNone;
    return t;
  }
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network;
  topo::Dumbbell d;
};

TEST_F(ClosedLoopFixture, IssuesExactlyRequestsPerSlot) {
  TrafficManager tm(network);
  sim::Rng rng(1);
  ClosedLoopConfig cfg;
  cfg.slots_per_pair = 3;
  cfg.requests_per_slot = 4;
  cfg.object_bytes = 5'000;
  cfg.start = sim::milliseconds(1);
  cfg.start_spread = sim::milliseconds(1);
  add_closed_loop_web(tm, {d.left[0]}, {d.right[0]},
                      tcp::Transport::kNewReno, quick(), cfg, rng);
  sched.run_until(sim::seconds(1));
  // 1 pair x 3 slots x 4 requests.
  EXPECT_EQ(tm.flow_count(), 12u);
  EXPECT_EQ(tm.completed_count(), 12u);
}

TEST_F(ClosedLoopFixture, RequestsOfASlotAreSequential) {
  TrafficManager tm(network);
  sim::Rng rng(2);
  ClosedLoopConfig cfg;
  cfg.slots_per_pair = 1;
  cfg.requests_per_slot = 5;
  cfg.object_bytes = 10'000;
  cfg.start = sim::milliseconds(1);
  cfg.start_spread = 0;
  add_closed_loop_web(tm, {d.left[0]}, {d.right[0]},
                      tcp::Transport::kNewReno, quick(), cfg, rng);
  sched.run_until(sim::seconds(1));
  const auto records = tm.collect_records();
  ASSERT_EQ(records.size(), 5u);
  // Epoch carries the request index; request i+1 starts after request i
  // completed (start_{i+1} >= start_i + fct_i).
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].epoch, records[i - 1].epoch + 1);
    EXPECT_GE(records[i].start_time,
              records[i - 1].start_time + records[i - 1].fct);
  }
}

TEST_F(ClosedLoopFixture, ThinkTimeSpacesRequests) {
  TrafficManager tm(network);
  sim::Rng rng(3);
  ClosedLoopConfig cfg;
  cfg.slots_per_pair = 1;
  cfg.requests_per_slot = 10;
  cfg.object_bytes = 1'000;
  cfg.start = 0;
  cfg.start_spread = 0;
  cfg.think_time_mean = sim::milliseconds(5);
  add_closed_loop_web(tm, {d.left[0]}, {d.right[0]},
                      tcp::Transport::kNewReno, quick(), cfg, rng);
  sched.run_until(sim::seconds(5));
  const auto records = tm.collect_records();
  ASSERT_EQ(records.size(), 10u);
  double total_gap_ms = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    total_gap_ms += sim::to_millis(records[i].start_time -
                                   (records[i - 1].start_time +
                                    records[i - 1].fct));
  }
  // 9 gaps with mean 5 ms: expect a clearly nonzero total.
  EXPECT_GT(total_gap_ms, 5.0);
}

TEST_F(ClosedLoopFixture, MultiplePairsRunIndependently) {
  TrafficManager tm(network);
  sim::Rng rng(4);
  ClosedLoopConfig cfg;
  cfg.slots_per_pair = 2;
  cfg.requests_per_slot = 3;
  cfg.object_bytes = 2'000;
  cfg.start = sim::milliseconds(1);
  cfg.start_spread = sim::milliseconds(2);
  add_closed_loop_web(tm, {d.left[0], d.left[1]}, {d.right[0], d.right[1]},
                      tcp::Transport::kNewReno, quick(), cfg, rng);
  sched.run_until(sim::seconds(1));
  // 2 servers x 2 clients x 2 slots x 3 requests.
  EXPECT_EQ(tm.flow_count(), 24u);
  EXPECT_EQ(tm.completed_count(), 24u);
}

TEST_F(ClosedLoopFixture, SelfRegulatesUnderTinyBottleneck) {
  // With a 1-packet bottleneck queue the open-loop equivalent would
  // pile up; the closed loop never has more than slots_per_pair flows
  // outstanding, so everything still completes.
  sim::SimContext ctx2;
  sim::Scheduler& sched2 = ctx2.scheduler();
  net::Network net2(ctx2);
  topo::DumbbellConfig tcfg;
  tcfg.pairs = 1;
  tcfg.edge_qdisc = net::make_droptail_factory(512);
  tcfg.bottleneck_qdisc = net::make_droptail_factory(8);
  topo::Dumbbell d2 = topo::build_dumbbell(net2, tcfg);

  TrafficManager tm(net2);
  sim::Rng rng(5);
  ClosedLoopConfig cfg;
  cfg.slots_per_pair = 2;
  cfg.requests_per_slot = 10;
  cfg.object_bytes = 20'000;
  cfg.start = 0;
  cfg.start_spread = sim::milliseconds(1);
  tcp::TcpConfig t;
  t.min_rto = sim::milliseconds(10);
  t.initial_rto = sim::milliseconds(10);
  t.ecn = tcp::EcnMode::kNone;
  add_closed_loop_web(tm, {d2.left[0]}, {d2.right[0]},
                      tcp::Transport::kNewReno, t, cfg, rng);
  sched2.run_until(sim::seconds(5));
  EXPECT_EQ(tm.completed_count(), 20u);
}

}  // namespace
}  // namespace hwatch::workload
