#include <gtest/gtest.h>

#include <set>

#include "topo/dumbbell.hpp"
#include "workload/traffic.hpp"

namespace hwatch::workload {
namespace {

struct WorkloadFixture : ::testing::Test {
  WorkloadFixture() : network(ctx) {
    topo::DumbbellConfig cfg;
    cfg.pairs = 8;
    cfg.edge_qdisc = net::make_droptail_factory(512);
    cfg.bottleneck_qdisc = net::make_droptail_factory(512);
    d = topo::build_dumbbell(network, cfg);
  }
  tcp::TcpConfig quick() {
    tcp::TcpConfig t;
    t.min_rto = sim::milliseconds(10);
    t.initial_rto = sim::milliseconds(10);
    t.ecn = tcp::EcnMode::kNone;
    return t;
  }
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network;
  topo::Dumbbell d;
};

TEST_F(WorkloadFixture, AddFlowTransfersAndRecords) {
  TrafficManager tm(network);
  FlowSpec spec;
  spec.src = d.left[0];
  spec.dst = d.right[0];
  spec.tcp = quick();
  spec.bytes = 50'000;
  spec.start = sim::milliseconds(1);
  spec.klass = stats::FlowClass::kShort;
  spec.epoch = 3;
  tm.add_flow(spec);
  sched.run_until(sim::milliseconds(200));

  EXPECT_EQ(tm.completed_count(), 1u);
  const auto records = tm.collect_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].completed);
  EXPECT_EQ(records[0].bytes, 50'000u);
  EXPECT_EQ(records[0].epoch, 3u);
  EXPECT_EQ(records[0].start_time, sim::milliseconds(1));
  EXPECT_EQ(records[0].transport, "newreno");
  EXPECT_LT(records[0].fct, sim::milliseconds(5));
}

TEST_F(WorkloadFixture, FlowDoesNotStartBeforeScheduledTime) {
  TrafficManager tm(network);
  FlowSpec spec;
  spec.src = d.left[0];
  spec.dst = d.right[0];
  spec.tcp = quick();
  spec.bytes = 1000;
  spec.start = sim::milliseconds(50);
  tm.add_flow(spec);
  sched.run_until(sim::milliseconds(40));
  EXPECT_EQ(tm.completed_count(), 0u);
  sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(tm.completed_count(), 1u);
}

TEST_F(WorkloadFixture, PortsAreUniquePerHost) {
  TrafficManager tm(network);
  std::set<std::uint16_t> ports;
  for (int i = 0; i < 100; ++i) {
    ports.insert(tm.next_port(*d.left[0]));
  }
  EXPECT_EQ(ports.size(), 100u);
  // Different hosts have independent spaces.
  EXPECT_EQ(tm.next_port(*d.left[1]), 1024);
}

TEST_F(WorkloadFixture, RejectsNullEndpoints) {
  TrafficManager tm(network);
  FlowSpec spec;
  EXPECT_THROW(tm.add_flow(spec), std::invalid_argument);
}

TEST_F(WorkloadFixture, BulkFlowsRunForever) {
  TrafficManager tm(network);
  sim::Rng rng(1);
  SenderGroup g{tcp::Transport::kNewReno, quick(), 4, "bulk"};
  add_bulk_flows(tm, {d.left.begin(), d.left.begin() + 4},
                 {d.right.begin(), d.right.begin() + 4}, {g}, 0,
                 sim::microseconds(100), rng);
  sched.run_until(sim::milliseconds(20));
  EXPECT_EQ(tm.flow_count(), 4u);
  EXPECT_EQ(tm.completed_count(), 0u);  // unlimited flows never complete
  const auto records = tm.collect_records();
  for (const auto& r : records) {
    EXPECT_EQ(r.klass, stats::FlowClass::kLong);
    EXPECT_GT(r.goodput_bps, 0.0);
  }
}

TEST_F(WorkloadFixture, BulkValidatesSourceCount) {
  TrafficManager tm(network);
  sim::Rng rng(1);
  SenderGroup g{tcp::Transport::kNewReno, quick(), 5, "bulk"};
  std::vector<net::Host*> three(d.left.begin(), d.left.begin() + 3);
  EXPECT_THROW(
      add_bulk_flows(tm, three, {d.right[0]}, {g}, 0, 0, rng),
      std::invalid_argument);
}

TEST_F(WorkloadFixture, IncastEpochsLaunchEveryFlowEveryEpoch) {
  TrafficManager tm(network);
  sim::Rng rng(2);
  SenderGroup g{tcp::Transport::kNewReno, quick(), 6, "incast"};
  IncastConfig cfg;
  cfg.epochs = 4;
  cfg.first_epoch = sim::milliseconds(5);
  cfg.epoch_interval = sim::milliseconds(20);
  cfg.flow_bytes = 10'000;
  add_incast_epochs(tm, {d.left.begin(), d.left.begin() + 6},
                    {d.right.begin(), d.right.begin() + 6}, {g}, cfg, rng);
  EXPECT_EQ(tm.flow_count(), 24u);  // 6 flows x 4 epochs
  sched.run_until(sim::milliseconds(200));
  EXPECT_EQ(tm.completed_count(), 24u);
  const auto records = tm.collect_records();
  std::set<std::uint32_t> epochs;
  for (const auto& r : records) {
    epochs.insert(r.epoch);
    EXPECT_EQ(r.bytes, 10'000u);
    EXPECT_EQ(r.klass, stats::FlowClass::kShort);
  }
  EXPECT_EQ(epochs.size(), 4u);
}

TEST_F(WorkloadFixture, IncastStartTimesAreInsideTheirEpochWindow) {
  TrafficManager tm(network);
  sim::Rng rng(2);
  SenderGroup g{tcp::Transport::kNewReno, quick(), 6, "incast"};
  IncastConfig cfg;
  cfg.epochs = 2;
  cfg.first_epoch = sim::milliseconds(5);
  cfg.epoch_interval = sim::milliseconds(50);
  cfg.mean_interarrival = sim::microseconds(1);
  add_incast_epochs(tm, {d.left.begin(), d.left.begin() + 6},
                    {d.right.begin(), d.right.begin() + 6}, {g}, cfg, rng);
  for (const auto& r : tm.collect_records()) {
    const sim::TimePs epoch_start =
        cfg.first_epoch + r.epoch * cfg.epoch_interval;
    EXPECT_GE(r.start_time, epoch_start);
    // Correlated arrivals: the whole epoch starts within a tight window.
    EXPECT_LT(r.start_time, epoch_start + sim::microseconds(100));
  }
}

TEST_F(WorkloadFixture, WebWavesCountMatchesTestbedArithmetic) {
  TrafficManager tm(network);
  sim::Rng rng(4);
  WebWaveConfig cfg;
  cfg.waves = 5;
  cfg.connections_per_pair = 10;
  std::vector<net::Host*> servers(d.left.begin(), d.left.begin() + 3);
  std::vector<net::Host*> clients(d.right.begin(), d.right.begin() + 2);
  add_web_waves(tm, servers, clients, tcp::Transport::kNewReno, quick(),
                cfg, rng);
  // 3 servers x 2 clients x 10 connections x 5 waves.
  EXPECT_EQ(tm.flow_count(), 300u);
}

TEST_F(WorkloadFixture, TotalsAggregateAcrossFlows) {
  TrafficManager tm(network);
  FlowSpec spec;
  spec.src = d.left[0];
  spec.dst = d.right[0];
  spec.tcp = quick();
  spec.bytes = 2000;
  tm.add_flow(spec);
  spec.src = d.left[1];
  spec.dst = d.right[1];
  tm.add_flow(spec);
  sched.run_until(sim::milliseconds(100));
  EXPECT_EQ(tm.total_retransmits(), 0u);
  EXPECT_EQ(tm.total_timeouts(), 0u);
}

}  // namespace
}  // namespace hwatch::workload
