#!/usr/bin/env python3
"""Perf-trajectory gate for the hwatch.bench/v1 reports.

Compares the bench reports a CI run just produced (bench_out/BENCH_*.json)
against the committed baselines in perf/baselines/ and fails when a
benchmark regressed beyond the tolerance:

  * events_per_s  must stay >= baseline * (1 - tolerance)
  * peak_rss_bytes must stay <= baseline * (1 + tolerance)

Faster / leaner than baseline always passes; ratchet the baselines
forward by re-running with --update after a deliberate perf change (or
when moving to different reference hardware) and committing the result.

Usage:
  scripts/check_perf.py [--bench-dir bench_out] [--baseline-dir perf/baselines]
                        [--tolerance 0.10] [--update] [name ...]

Positional names restrict the check to specific benchmarks ("fig8",
"fig_fatree_scale", ...); default is every report present in the bench
dir that has a committed baseline.  A report without a baseline is
reported but never fails the gate (new benches land first, their
baseline lands with the numbers of the first green run); --update
creates/refreshes baselines for everything it finds.

Exit codes: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys
from pathlib import Path

BENCH_SCHEMA = "hwatch.bench/v1"
BASELINE_SCHEMA = "hwatch.perf_baseline/v1"
METRICS = ("events_per_s", "peak_rss_bytes")


def load_json(path: Path):
    try:
        with path.open() as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_reports(bench_dir: Path, names):
    reports = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        doc = load_json(path)
        # Skip foreign formats (e.g. google-benchmark's micro_simcore
        # output) — this gate only understands hwatch.bench/v1.
        if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
            continue
        name = doc.get("name") or path.stem.removeprefix("BENCH_")
        if names and name not in names:
            continue
        reports[name] = doc
    return reports


def baseline_of(doc):
    return {
        "schema": BASELINE_SCHEMA,
        "name": doc["name"],
        "events": doc.get("events", 0),
        "events_per_s": doc.get("events_per_s", 0.0),
        "peak_rss_bytes": doc.get("peak_rss_bytes", 0),
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-dir", default="bench_out", type=Path)
    ap.add_argument("--baseline-dir", default="perf/baselines", type=Path)
    ap.add_argument("--tolerance", default=0.10, type=float,
                    help="allowed fractional regression (default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite baselines from the current reports")
    ap.add_argument("--report", action="store_true",
                    help="print a per-bench summary line (events/s plus "
                         "the worst per-point shard imbalance) before "
                         "the gate results")
    ap.add_argument("names", nargs="*",
                    help="benchmark names to check (default: all present)")
    args = ap.parse_args()

    if not args.bench_dir.is_dir():
        print(f"error: bench dir {args.bench_dir} not found", file=sys.stderr)
        return 2
    reports = load_reports(args.bench_dir, set(args.names))
    if not reports:
        print(f"error: no {BENCH_SCHEMA} reports in {args.bench_dir}",
              file=sys.stderr)
        return 2
    missing = set(args.names) - set(reports)
    if missing:
        print(f"error: requested bench(es) not found: {sorted(missing)}",
              file=sys.stderr)
        return 2

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for name, doc in reports.items():
            out = args.baseline_dir / f"BENCH_{name}.json"
            with out.open("w") as fh:
                json.dump(baseline_of(doc), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"baseline updated: {out}")
        return 0

    if args.report:
        for name, doc in sorted(reports.items()):
            rate = float(doc.get("events_per_s", 0))
            imbalances = [float(p.get("imbalance", 0))
                          for p in doc.get("points", [])]
            worst = max(imbalances, default=0.0)
            line = f"{name}: {rate / 1e6:.2f}M events/s"
            if worst > 0:
                # Sharded points only; 1.0 = perfectly balanced shards.
                line += f", shard imbalance {worst:.2f}x (worst point)"
            print(line)
        print()

    failures = []
    for name, doc in sorted(reports.items()):
        base_path = args.baseline_dir / f"BENCH_{name}.json"
        if not base_path.is_file():
            print(f"{name}: no baseline ({base_path}); skipping "
                  f"(run with --update to create one)")
            continue
        base = load_json(base_path)
        if base.get("schema") != BASELINE_SCHEMA:
            print(f"error: {base_path} is not a {BASELINE_SCHEMA} file",
                  file=sys.stderr)
            return 2
        for metric in METRICS:
            cur = float(doc.get(metric, 0))
            ref = float(base.get(metric, 0))
            if ref <= 0:
                continue
            if metric == "events_per_s":
                floor = ref * (1.0 - args.tolerance)
                ok = cur >= floor
                direction = f">= {floor:.0f}"
            else:
                ceil = ref * (1.0 + args.tolerance)
                ok = cur <= ceil
                direction = f"<= {ceil:.0f}"
            ratio = cur / ref
            verdict = "ok" if ok else "REGRESSION"
            print(f"{name}: {metric} {cur:.0f} vs baseline {ref:.0f} "
                  f"({ratio:.2f}x, need {direction}) {verdict}")
            if not ok:
                failures.append((name, metric, cur, ref))
        if doc.get("events") != base.get("events"):
            # Informational only: event counts are deterministic, so a
            # drift means the scenario config changed — refresh the
            # baseline alongside deliberate changes.
            print(f"{name}: note: events {doc.get('events')} != baseline "
                  f"{base.get('events')} (config changed? refresh baseline)")

    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print("\nperf trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
