#!/usr/bin/env python3
"""Validates a hwlint --json report against hwatch.hwlint_report/v2.

Usage:
    hwlint --root . --json | scripts/check_hwlint_schema.py
    scripts/check_hwlint_schema.py hwlint_report.json

CI pipes the machine-readable report through this checker so schema
drift (renamed fields, unsorted violations, a pass name the report does
not declare) fails the lint job even on a tree with zero violations.
Exits 0 on a valid report, 1 on drift, 2 on unreadable input.
"""

import json
import sys

SCHEMA = "hwatch.hwlint_report/v2"

# Every rule and pass the v2 linter can emit.  Additions here must land
# together with the C++ side (all_rules()/all_passes() in rules.cpp).
KNOWN_RULES = {
    "nondeterminism",
    "hot-path-container",
    "hot-path-alloc",
    "unordered-iter",
    "cross-shard-state",
    "mutable-global",
    "bad-suppression",
    "layering",
    "shard-confinement",
    "fp-determinism",
}
KNOWN_PASSES = {"token", "include-graph", "shard-confinement", "fp-determinism"}

TOP_KEYS = ("schema", "root", "files_scanned", "suppressed", "allowlisted",
            "rules", "passes", "violations")
VIOLATION_KEYS = ("file", "line", "rule", "pass", "message", "evidence")


def fail(msg):
    print(f"check_hwlint_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        if len(sys.argv) == 2:
            with open(sys.argv[1]) as fh:
                doc = json.load(fh)
        else:
            doc = json.load(sys.stdin)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_hwlint_schema: unreadable report: {exc}", file=sys.stderr)
        sys.exit(2)

    if not isinstance(doc, dict):
        fail("top level is not an object")
    for key in TOP_KEYS:
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if doc["schema"] != SCHEMA:
        fail(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    for key in ("files_scanned", "suppressed", "allowlisted"):
        if not isinstance(doc[key], int) or doc[key] < 0:
            fail(f"{key} is not a non-negative integer")

    # The report must declare exactly the vocabulary this checker knows;
    # a new rule/pass on either side without the other is drift.
    if set(doc["rules"]) != KNOWN_RULES:
        fail(f"rules vocabulary drifted: {sorted(set(doc['rules']) ^ KNOWN_RULES)}")
    if set(doc["passes"]) != KNOWN_PASSES:
        fail(f"passes vocabulary drifted: "
             f"{sorted(set(doc['passes']) ^ KNOWN_PASSES)}")

    violations = doc["violations"]
    if not isinstance(violations, list):
        fail("violations is not an array")
    prev_key = None
    for i, v in enumerate(violations):
        where = f"violations[{i}]"
        if not isinstance(v, dict):
            fail(f"{where} is not an object")
        for key in VIOLATION_KEYS:
            if key not in v:
                fail(f"{where} missing {key!r}")
        if not isinstance(v["line"], int) or v["line"] < 1:
            fail(f"{where} line {v['line']!r} is not a positive integer")
        if v["rule"] not in KNOWN_RULES:
            fail(f"{where} names unknown rule {v['rule']!r}")
        if v["pass"] not in KNOWN_PASSES:
            fail(f"{where} names unknown pass {v['pass']!r}")
        if not v["message"]:
            fail(f"{where} has an empty message")
        key = (v["file"], v["line"], v["rule"], v["evidence"])
        if prev_key is not None and key < prev_key:
            fail(f"{where} breaks (file, line, rule, evidence) order: "
                 f"{key} after {prev_key}")
        prev_key = key

    print(f"check_hwlint_schema: ok ({doc['files_scanned']} files, "
          f"{len(violations)} violations, {doc['suppressed']} suppressed, "
          f"{doc['allowlisted']} allowlisted)")


if __name__ == "__main__":
    main()
