#!/usr/bin/env python3
"""Render the bench CSVs (bench_out/<figure>/*.csv) as plots.

Usage:
    python3 scripts/plot_bench.py [bench_out] [--out plots]

With matplotlib installed, writes one PNG per figure panel (the CDF
curves of every scheme overlaid, plus the queue-occupancy time series)
— the same panels the paper's figures show.  Without matplotlib, falls
back to ASCII plots on stdout so the shapes are still inspectable on a
headless box.
"""

import argparse
import csv
import os
import sys
from collections import defaultdict


def read_xy(path):
    xs, ys = [], []
    with open(path) as f:
        reader = csv.reader(f)
        next(reader, None)  # header
        for row in reader:
            if len(row) != 2:
                continue
            try:
                xs.append(float(row[0]))
                ys.append(float(row[1]))
            except ValueError:
                continue
    return xs, ys


def collect(root):
    """figure -> panel -> [(curve_name, xs, ys)]"""
    figures = defaultdict(lambda: defaultdict(list))
    if not os.path.isdir(root):
        sys.exit(f"no such directory: {root} (run the benches first)")
    for fig in sorted(os.listdir(root)):
        fig_dir = os.path.join(root, fig)
        if not os.path.isdir(fig_dir):
            continue
        for name in sorted(os.listdir(fig_dir)):
            if not name.endswith(".csv"):
                continue
            for panel in ("fct_cdf", "goodput_cdf", "queue", "util"):
                suffix = f"_{panel}.csv"
                if name.endswith(suffix):
                    curve = name[: -len(suffix)]
                    xs, ys = read_xy(os.path.join(fig_dir, name))
                    if xs:
                        figures[fig][panel].append((curve, xs, ys))
    return figures


def ascii_plot(title, curves, width=72, height=14):
    print(f"\n{title}")
    all_x = [x for _, xs, _ in curves for x in xs]
    all_y = [y for _, _, ys in curves for y in ys]
    if not all_x:
        return
    x0, x1 = min(all_x), max(all_x) or 1
    y0, y1 = min(all_y), max(all_y) or 1
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    grid = [[" "] * width for _ in range(height)]
    marks = "abcdefghij"
    for idx, (name, xs, ys) in enumerate(curves):
        m = marks[idx % len(marks)]
        for x, y in zip(xs, ys):
            col = int((x - x0) / (x1 - x0) * (width - 1))
            row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
            grid[row][col] = m
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * width)
    print(f"   x: [{x0:g}, {x1:g}]  y: [{y0:g}, {y1:g}]")
    for idx, (name, _, _) in enumerate(curves):
        print(f"   {marks[idx % len(marks)]} = {name}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("root", nargs="?", default="bench_out")
    ap.add_argument("--out", default="plots")
    args = ap.parse_args()

    figures = collect(args.root)
    if not figures:
        sys.exit(f"no CSVs under {args.root}")

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None

    panel_labels = {
        "fct_cdf": ("FCT (ms)", "cumulative fraction"),
        "goodput_cdf": ("goodput (Gb/s)", "cumulative fraction"),
        "queue": ("time (s)", "queue (pkts)"),
        "util": ("time (s)", "utilization"),
    }

    if plt is None:
        print("(matplotlib not found: ASCII fallback)")
        for fig, panels in figures.items():
            for panel, curves in panels.items():
                ascii_plot(f"{fig} / {panel}", curves)
        return

    os.makedirs(args.out, exist_ok=True)
    for fig, panels in figures.items():
        for panel, curves in panels.items():
            plt.figure(figsize=(6, 4))
            for name, xs, ys in curves:
                if panel == "fct_cdf":
                    plt.semilogx(xs, ys, label=name)
                else:
                    plt.plot(xs, ys, label=name)
            xl, yl = panel_labels.get(panel, ("x", "y"))
            plt.xlabel(xl)
            plt.ylabel(yl)
            plt.title(f"{fig}: {panel}")
            plt.legend(fontsize=7)
            plt.grid(True, alpha=0.3)
            plt.tight_layout()
            out = os.path.join(args.out, f"{fig}_{panel}.png")
            plt.savefig(out, dpi=130)
            plt.close()
            print(f"wrote {out}")


if __name__ == "__main__":
    main()
