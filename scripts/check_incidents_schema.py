#!/usr/bin/env python3
"""Validates a run manifest's incidents section against hwatch.incidents/v1.

Usage:
    scripts/check_incidents_schema.py manifest.json [spans.jsonl]

CI runs this on every manifest the trace-export job produces so schema
drift (renamed fields, an unsorted incident list, ids that stop being
array indices, a kind outside the vocabulary) fails the job even when
the incidents themselves look plausible.  With a span JSONL dump as the
second argument it also checks referential integrity: every span id an
incident cites must be defined by the dump ("F" flow-registry or "B"
span-open lines), so `trace_inspect explain` can always resolve the
join.  Exits 0 on a valid section, 1 on drift, 2 on unreadable input.
A manifest *without* an incidents section passes (detectors off is a
legal configuration); an incidents key with the wrong schema does not.
"""

import json
import sys

SCHEMA = "hwatch.incidents/v1"

# The manifest vocabulary, in IncidentKind enum order — the global sort
# compares the enum, not the wire name, so the checker must rank kinds
# the same way the C++ side does (to_string in incident.cpp).
KINDS = (
    "queue-buildup",
    "incast",
    "rto-storm",
    "retx-burst",
    "flow-stall",
    "rwnd-rewrite-burst",
)

INCIDENT_KEYS = ("id", "kind", "severity", "start_ps", "end_ps",
                 "location", "magnitude", "flows", "spans")
FLOW_KEYS = ("src", "dst", "sport", "dport", "span")


def fail(msg):
    print(f"check_incidents_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_incidents_schema: unreadable {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)


def span_ids_of(path):
    """Every span id a JSONL span dump defines (F and B lines)."""
    ids = set()
    try:
        with open(path) as fh:
            for n, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    print(f"check_incidents_schema: {path}:{n}: {exc}",
                          file=sys.stderr)
                    sys.exit(2)
                if rec.get("ph") in ("F", "B") and "id" in rec:
                    ids.add(rec["id"])
    except OSError as exc:
        print(f"check_incidents_schema: unreadable {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)
    return ids


def uint(incident, key):
    v = incident.get(key)
    if not isinstance(v, int) or isinstance(v, bool) or v < 0:
        fail(f"incident {incident.get('id')!r}: {key} is not a "
             f"non-negative integer: {v!r}")
    return v


def sort_key(incident):
    flows = incident["flows"]
    hi = (flows[0]["src"] << 32 | flows[0]["dst"]) if flows else 0
    lo = (flows[0]["sport"] << 16 | flows[0]["dport"]) if flows else 0
    return (incident["start_ps"], KINDS.index(incident["kind"]),
            incident["location"], incident["end_ps"], hi, lo,
            incident["magnitude"])


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    manifest = load_json(sys.argv[1])
    if not isinstance(manifest, dict):
        fail("manifest top level is not an object")
    section = manifest.get("incidents")
    if section is None:
        print("check_incidents_schema: no incidents section (detectors "
              "off) — ok")
        return
    if not isinstance(section, dict):
        fail("incidents section is not an object")
    if section.get("schema") != SCHEMA:
        fail(f"schema is {section.get('schema')!r}, expected {SCHEMA!r}")
    incidents = section.get("incidents")
    if not isinstance(incidents, list):
        fail("incidents array missing")
    if section.get("count") != len(incidents):
        fail(f"count {section.get('count')!r} != array length "
             f"{len(incidents)}")

    cited_spans = set()
    for index, inc in enumerate(incidents):
        if not isinstance(inc, dict):
            fail(f"incident {index} is not an object")
        for key in INCIDENT_KEYS:
            if key not in inc:
                fail(f"incident {index}: missing key {key!r}")
        if inc["id"] != index:
            fail(f"incident {index}: id {inc['id']!r} is not its array "
                 f"index")
        if inc["kind"] not in KINDS:
            fail(f"incident {index}: unknown kind {inc['kind']!r}")
        if inc["severity"] not in (1, 2, 3):
            fail(f"incident {index}: severity {inc['severity']!r} "
                 f"outside 1..3")
        if uint(inc, "start_ps") > uint(inc, "end_ps"):
            fail(f"incident {index}: start_ps > end_ps")
        uint(inc, "magnitude")
        if not isinstance(inc["location"], str) or not inc["location"]:
            fail(f"incident {index}: location is not a non-empty string")
        # drops rides only on queue-buildup incidents.
        if (inc["kind"] == "queue-buildup") != ("drops" in inc):
            fail(f"incident {index}: drops key "
                 f"{'missing from' if inc['kind'] == 'queue-buildup' else 'present on'} "
                 f"{inc['kind']}")
        if not isinstance(inc["flows"], list):
            fail(f"incident {index}: flows is not an array")
        for f in inc["flows"]:
            for key in FLOW_KEYS:
                if key not in f:
                    fail(f"incident {index}: flow missing key {key!r}")
            if f["span"] != 0:
                cited_spans.add(f["span"])
        spans = inc["spans"]
        if not isinstance(spans, list) or spans != sorted(set(spans)):
            fail(f"incident {index}: spans is not a sorted unique array")
        if 0 in spans:
            fail(f"incident {index}: spans contains the null span id 0")
        cited_spans.update(spans)

    keys = [sort_key(inc) for inc in incidents]
    if keys != sorted(keys):
        fail("incident list is not in the deterministic global order "
             "(start_ps, kind, location, end_ps, first-flow, magnitude)")

    if len(sys.argv) == 3:
        defined = span_ids_of(sys.argv[2])
        dangling = cited_spans - defined
        if dangling:
            fail(f"span refs not defined by the span dump: "
                 f"{sorted(dangling)[:10]}")

    print(f"check_incidents_schema: ok — {len(incidents)} incidents, "
          f"{len(cited_spans)} span refs")


if __name__ == "__main__":
    main()
