# Header self-containment gate (HWATCH_HEADER_CHECK, default ON).
#
# Every public header under src/ gets a generated one-line TU that
# includes it and nothing else, compiled into the OBJECT library
# `header_selfcheck` as part of ALL.  A header that silently leans on
# whatever its includers happened to pull in fails this build instead of
# breaking the next unrelated refactor.
#
# The header list is globbed at configure time; adding a brand-new
# header needs a reconfigure to enter the gate (any CMakeLists edit or
# a clean CI run does that).

file(GLOB_RECURSE _hwatch_public_headers
  RELATIVE ${CMAKE_SOURCE_DIR}/src
  ${CMAKE_SOURCE_DIR}/src/*.hpp)
list(SORT _hwatch_public_headers)

set(_hwatch_hdrcheck_srcs)
foreach(_hdr IN LISTS _hwatch_public_headers)
  string(REPLACE "/" "_" _stem ${_hdr})
  string(REPLACE ".hpp" "" _stem ${_stem})
  set(HWATCH_HEADER_CHECK_INCLUDE ${_hdr})
  configure_file(${CMAKE_SOURCE_DIR}/cmake/header_check.cpp.in
    ${CMAKE_BINARY_DIR}/header_check/check_${_stem}.cpp @ONLY)
  list(APPEND _hwatch_hdrcheck_srcs
    ${CMAKE_BINARY_DIR}/header_check/check_${_stem}.cpp)
endforeach()

add_library(header_selfcheck OBJECT ${_hwatch_hdrcheck_srcs})
target_include_directories(header_selfcheck PRIVATE ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(header_selfcheck PRIVATE hwatch_build_flags)
