# Build flags as a target, not directory-global state.
#
# Warnings, -Werror and sanitizer instrumentation are carried by the
# INTERFACE library `hwatch_build_flags` and attached PRIVATE to every
# project target.  That keeps them off CMake try-compiles, imported
# packages and any future FetchContent tree, so HWATCH_WERROR /
# HWATCH_SANITIZE / HWATCH_TSAN builds cannot break on third-party
# toolchain noise.  (PRIVATE deps of static libraries still propagate
# their link options to the final executable via $<LINK_ONLY:...>, so
# sanitizer runtimes link correctly.)

add_library(hwatch_build_flags INTERFACE)

target_compile_options(hwatch_build_flags INTERFACE -Wall -Wextra)
if(HWATCH_WERROR)
  target_compile_options(hwatch_build_flags INTERFACE -Werror)
endif()

if(HWATCH_SANITIZE AND HWATCH_TSAN)
  message(FATAL_ERROR
    "HWATCH_SANITIZE (ASan+UBSan) and HWATCH_TSAN cannot be combined; "
    "pick one sanitizer build.")
endif()

if(HWATCH_SANITIZE)
  target_compile_options(hwatch_build_flags INTERFACE
    -fsanitize=address,undefined -fno-omit-frame-pointer)
  target_link_options(hwatch_build_flags INTERFACE
    -fsanitize=address,undefined)
endif()

if(HWATCH_TSAN)
  target_compile_options(hwatch_build_flags INTERFACE
    -fsanitize=thread -fno-omit-frame-pointer)
  target_link_options(hwatch_build_flags INTERFACE -fsanitize=thread)
endif()
