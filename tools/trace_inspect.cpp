// trace_inspect — summarize, filter or export the JSONL traces the
// simulator emits: packet traces (net::PacketTracer jsonl_sink) and
// span traces (sim::SpanTracer::dump_jsonl).
//
// Usage:
//   trace_inspect [summary] [options] [files...]      aggregate report
//   trace_inspect filter [options] [files...]         re-emit matching lines
//   trace_inspect print ...                           alias of filter
//   trace_inspect export [-o FILE] [--manifest M] [files...]
//                                                     Chrome trace-event JSON
//   trace_inspect explain FLOW [--manifest M] [files...]
//                                                     root-cause one flow
//
// Options (summary/filter):
//   --kind K           keep only kind K (repeatable: OR across kinds)
//   --dir in|out       keep only one direction
//   --src N --dst N    filter by node id
//   --sport N --dport N filter by port
//   --since S --until S keep t in [S, U] (seconds, fractional ok)
//   --ce               keep only CE-marked packets
//
// `export` merges packet lines and span lines from every input into one
// Chrome trace-event JSON object (schema `hwatch.trace_export/v1`) that
// loads directly in Perfetto: span begin/end pairs become nested slices
// on one track per flow, packets and decisions become instants.  With
// --manifest pointing at a run manifest carrying an `incidents` section
// (schema hwatch.incidents/v1), the incidents ride along as a third
// process with one track per location.
//
// `explain` is the root-cause doctor: FLOW is a flow-span id or a
// "src:sport->dst:dport" tuple; the report joins the flow's spans, its
// per-packet latency decomposition and the manifest's overlapping
// incidents into a causal FCT breakdown ("slow because: ...").
//
// Files default to stdin.  Exit codes: 0 ok, 1 bad usage / unreadable
// file / flow not found, 2 malformed input line.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/json.hpp"

namespace {

using hwatch::sim::Json;

enum class Mode { kSummary, kFilter, kExport, kExplain };

struct Options {
  Mode mode = Mode::kSummary;
  std::vector<std::string> kinds;  // empty = all; else OR-match
  std::optional<std::string> dir;
  std::optional<std::uint64_t> src, dst, sport, dport;
  std::optional<double> since_s, until_s;
  bool ce_only = false;
  std::vector<std::string> files;  // empty = stdin
  std::string out_file;            // export only; empty = stdout
  std::string manifest_file;       // export/explain; empty = none
  std::string explain_flow;        // explain only: span id or 4-tuple
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [summary|filter|print|export|explain FLOW] [options] "
      << "[files...]\n"
      << "  summary (default) | filter/print | export [-o FILE]\n"
      << "  explain FLOW: FLOW = flow-span id or src:sport->dst:dport\n"
      << "  --manifest FILE (export/explain: join incidents section)\n"
      << "  --kind K (repeatable)   --dir in|out   --ce\n"
      << "  --src N --dst N --sport N --dport N\n"
      << "  --since SECONDS --until SECONDS\n";
  return 1;
}

bool parse_args(int argc, char** argv, Options& opt) {
  int i = 1;
  if (i < argc) {
    const std::string first = argv[i];
    if (first == "summary") {
      opt.mode = Mode::kSummary;
      ++i;
    } else if (first == "filter" || first == "print") {
      opt.mode = Mode::kFilter;
      ++i;
    } else if (first == "export") {
      opt.mode = Mode::kExport;
      ++i;
    } else if (first == "explain") {
      opt.mode = Mode::kExplain;
      ++i;
      if (i >= argc) return false;
      opt.explain_flow = argv[i];
      ++i;
    }
  }
  auto need = [&](int& k) -> const char* {
    if (k + 1 >= argc) return nullptr;
    return argv[++k];
  };
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--summary") {
      opt.mode = Mode::kSummary;
    } else if (a == "--print") {
      opt.mode = Mode::kFilter;
    } else if (a == "--ce") {
      opt.ce_only = true;
    } else if (a == "--kind" && (v = need(i))) {
      opt.kinds.emplace_back(v);
    } else if (a == "--dir" && (v = need(i))) {
      opt.dir = v;
    } else if (a == "--src" && (v = need(i))) {
      opt.src = std::stoull(v);
    } else if (a == "--dst" && (v = need(i))) {
      opt.dst = std::stoull(v);
    } else if (a == "--sport" && (v = need(i))) {
      opt.sport = std::stoull(v);
    } else if (a == "--dport" && (v = need(i))) {
      opt.dport = std::stoull(v);
    } else if (a == "--since" && (v = need(i))) {
      opt.since_s = std::stod(v);
    } else if (a == "--until" && (v = need(i))) {
      opt.until_s = std::stod(v);
    } else if (a == "-o" && (v = need(i))) {
      if (opt.mode != Mode::kExport) return false;
      opt.out_file = v;
    } else if (a == "--manifest" && (v = need(i))) {
      if (opt.mode != Mode::kExport && opt.mode != Mode::kExplain) {
        return false;
      }
      opt.manifest_file = v;
    } else if (!a.empty() && a[0] != '-') {
      opt.files.push_back(a);
    } else {
      return false;
    }
  }
  return true;
}

std::uint64_t get_uint(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_uint() : 0;
}

std::string get_str(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

bool matches(const Json& j, const Options& opt) {
  if (!opt.kinds.empty()) {
    const std::string k = get_str(j, "kind");
    if (std::find(opt.kinds.begin(), opt.kinds.end(), k) ==
        opt.kinds.end()) {
      return false;
    }
  }
  if (opt.dir && get_str(j, "dir") != *opt.dir) return false;
  if (opt.src && get_uint(j, "src") != *opt.src) return false;
  if (opt.dst && get_uint(j, "dst") != *opt.dst) return false;
  if (opt.sport && get_uint(j, "sport") != *opt.sport) return false;
  if (opt.dport && get_uint(j, "dport") != *opt.dport) return false;
  if (opt.ce_only && get_str(j, "ecn") != "ce") return false;
  const double t_s = static_cast<double>(get_uint(j, "t_ps")) / 1e12;
  if (opt.since_s && t_s < *opt.since_s) return false;
  if (opt.until_s && t_s > *opt.until_s) return false;
  return true;
}

struct FlowAgg {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ce = 0;
  std::uint64_t data = 0;
  std::uint64_t acks = 0;
  std::uint64_t syn = 0;
  std::uint64_t fin = 0;
  std::uint64_t probes = 0;
};

struct Summary {
  std::uint64_t lines = 0;
  std::uint64_t matched = 0;
  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::string, std::uint64_t> by_flag;  // S, F, R presence
  std::uint64_t ce = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t t_min = UINT64_MAX, t_max = 0;
  std::map<std::string, FlowAgg> flows;
};

void accumulate(const Json& j, Summary& s) {
  ++s.matched;
  ++s.by_kind[get_str(j, "kind")];
  const std::string flags = get_str(j, "flags");
  if (flags.find('S') != std::string::npos) ++s.by_flag["syn"];
  if (flags.find('F') != std::string::npos) ++s.by_flag["fin"];
  if (flags.find('R') != std::string::npos) ++s.by_flag["rst"];
  if (flags.find('E') != std::string::npos) ++s.by_flag["ece"];
  if (get_str(j, "ecn") == "ce") ++s.ce;
  s.wire_bytes += get_uint(j, "wire");
  s.payload_bytes += get_uint(j, "payload");
  const std::uint64_t t = get_uint(j, "t_ps");
  if (t < s.t_min) s.t_min = t;
  if (t > s.t_max) s.t_max = t;
  std::ostringstream key;
  key << get_uint(j, "src") << ':' << get_uint(j, "sport") << " -> "
      << get_uint(j, "dst") << ':' << get_uint(j, "dport");
  FlowAgg& f = s.flows[key.str()];
  ++f.packets;
  f.bytes += get_uint(j, "wire");
  if (get_str(j, "ecn") == "ce") ++f.ce;
  const std::string kind = get_str(j, "kind");
  if (kind == "probe") {
    ++f.probes;
  } else {
    if (get_uint(j, "payload") > 0) {
      ++f.data;
    } else if (flags.find('S') == std::string::npos &&
               flags.find('F') == std::string::npos) {
      ++f.acks;
    }
    if (flags.find('S') != std::string::npos) ++f.syn;
    if (flags.find('F') != std::string::npos) ++f.fin;
  }
}

void print_summary(const Summary& s) {
  std::cout << "lines: " << s.lines << "  matched: " << s.matched << "\n";
  if (s.matched == 0) return;
  std::cout << "span: " << static_cast<double>(s.t_min) / 1e12 << "s .. "
            << static_cast<double>(s.t_max) / 1e12 << "s\n";
  std::cout << "by kind:";
  for (const auto& [k, n] : s.by_kind) std::cout << "  " << k << "=" << n;
  std::cout << "\nflags:";
  for (const auto& [k, n] : s.by_flag) std::cout << "  " << k << "=" << n;
  std::cout << "\nce-marked: " << s.ce << " ("
            << 100.0 * static_cast<double>(s.ce) /
                   static_cast<double>(s.matched)
            << "%)\n";
  std::cout << "bytes: wire=" << s.wire_bytes
            << " payload=" << s.payload_bytes << "\n";

  std::vector<std::pair<std::string, FlowAgg>> top(s.flows.begin(),
                                                   s.flows.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second.packets > b.second.packets;
  });
  std::cout << "flows: " << top.size() << " (top 10 by packets)\n";
  for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
    const FlowAgg& f = top[i].second;
    std::cout << "  " << top[i].first << "  pkts=" << f.packets
              << " bytes=" << f.bytes << " ce=" << f.ce
              << " data=" << f.data << " acks=" << f.acks
              << " syn=" << f.syn << " fin=" << f.fin
              << " probes=" << f.probes << "\n";
  }
}

// ---- export: merged Chrome trace-event JSON ---------------------------

/// Exact ps -> us fixed point (same formatting as SpanTracer's native
/// export, so merged output stays byte-deterministic).
void write_ts_us(std::ostream& os, std::uint64_t ps) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                static_cast<unsigned long long>(ps / 1000000u),
                static_cast<unsigned long long>(ps % 1000000u));
  os << buf;
}

struct ExportLine {
  std::uint64_t t = 0;
  std::size_t order = 0;  // input order; ties on t keep it (nesting)
  Json j;
  bool is_packet = false;
  // Incident slice (from --manifest): pid 3, one track per location.
  bool is_incident = false;
  char incident_phase = 'B';
  std::size_t incident_tid = 0;
};

/// Reads the manifest's `incidents` section (schema hwatch.incidents/v1).
/// Returns 0 and fills `out` (left null when the file has no incidents
/// section); 1 when the file is unreadable, 2 when it is not valid JSON.
int load_manifest_incidents(const std::string& path, Json& out) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "error: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string err;
  const Json doc = Json::parse(buf.str(), &err);
  if (!err.empty() || !doc.is_object()) {
    std::cerr << path << ": parse error: "
              << (err.empty() ? "not an object" : err) << "\n";
    return 2;
  }
  const Json* inc = doc.find("incidents");
  if (inc == nullptr) return 0;
  const Json* schema = inc->find("schema");
  if (schema == nullptr ||
      schema->as_string() != "hwatch.incidents/v1") {
    std::cerr << path << ": incidents section is not "
              << "hwatch.incidents/v1\n";
    return 2;
  }
  const Json* arr = inc->find("incidents");
  if (arr == nullptr || !arr->is_array()) {
    std::cerr << path << ": incidents section has no incident array\n";
    return 2;
  }
  out = *arr;
  return 0;
}

int run_export(const std::vector<Json>& lines, const Json& incidents,
               std::ostream& os) {
  // First pass: flow-track registry (span flows from "F" lines, packet
  // flows from 4-tuples in order of first appearance) and the dropped
  // count.
  std::map<std::uint64_t, std::size_t> span_tid;    // flow span -> tid
  std::vector<std::string> span_names;
  std::map<std::string, std::size_t> packet_tid;    // tuple -> tid
  std::vector<std::string> packet_names;
  std::uint64_t dropped = 0;
  std::vector<ExportLine> events;
  std::uint64_t t_max = 0;
  std::vector<const Json*> latency_lines;

  for (const Json& j : lines) {
    const std::string ph = get_str(j, "ph");
    if (ph == "F") {
      std::ostringstream name;
      name << "flow " << get_uint(j, "src") << ':' << get_uint(j, "sport")
           << "->" << get_uint(j, "dst") << ':' << get_uint(j, "dport");
      span_tid.emplace(get_uint(j, "id"), span_tid.size() + 1);
      span_names.push_back(name.str());
      continue;
    }
    if (ph == "D") {
      dropped += get_uint(j, "dropped_events");
      continue;
    }
    if (ph == "L") {
      latency_lines.push_back(&j);
      continue;
    }
    ExportLine ev;
    ev.t = get_uint(j, "t_ps");
    ev.order = events.size();
    ev.is_packet = j.find("dir") != nullptr;
    if (ev.is_packet) {
      std::ostringstream key;
      key << get_uint(j, "src") << ':' << get_uint(j, "sport") << "->"
          << get_uint(j, "dst") << ':' << get_uint(j, "dport");
      if (packet_tid.emplace(key.str(), packet_tid.size() + 1).second) {
        packet_names.push_back(key.str());
      }
    }
    if (ev.t > t_max) t_max = ev.t;
    ev.j = j;
    events.push_back(std::move(ev));
  }

  // Incidents (--manifest) become duration slices on pid 3, one track
  // per location (order of first appearance); they merge into the same
  // time-sorted stream, so the export stays monotonic.
  std::map<std::string, std::size_t> incident_tid;
  std::vector<std::string> incident_names;
  if (incidents.is_array()) {
    for (const Json& inc : incidents.items()) {
      const std::string loc = get_str(inc, "location");
      if (incident_tid.emplace(loc, incident_tid.size() + 1).second) {
        incident_names.push_back(loc);
      }
      const std::size_t tid = incident_tid[loc];
      for (const char phase : {'B', 'E'}) {
        ExportLine ev;
        ev.t = get_uint(inc, phase == 'B' ? "start_ps" : "end_ps");
        ev.order = events.size();
        ev.is_incident = true;
        ev.incident_phase = phase;
        ev.incident_tid = tid;
        ev.j = inc;
        if (ev.t > t_max) t_max = ev.t;
        events.push_back(std::move(ev));
      }
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const ExportLine& a, const ExportLine& b) {
                     return a.t < b.t;
                   });

  os << "{\"schema\":\"hwatch.trace_export/v1\",\"displayTimeUnit\":\"ms\","
     << "\"dropped_events\":" << dropped << ",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  const auto meta = [&](int pid, std::uint64_t tid, const char* what,
                        const std::string& name) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"" << what << "\",\"args\":{\"name\":";
    Json::write_escaped(os, name);
    os << "}}";
  };
  meta(1, 0, "process_name", "spans");
  for (std::size_t i = 0; i < span_names.size(); ++i) {
    meta(1, i + 1, "thread_name", span_names[i]);
  }
  if (!packet_names.empty()) {
    meta(2, 0, "process_name", "packets");
    for (std::size_t i = 0; i < packet_names.size(); ++i) {
      meta(2, i + 1, "thread_name", packet_names[i]);
    }
  }
  if (!incident_names.empty()) {
    meta(3, 0, "process_name", "incidents");
    for (std::size_t i = 0; i < incident_names.size(); ++i) {
      meta(3, i + 1, "thread_name", incident_names[i]);
    }
  }

  const auto write_args = [&](const Json& j,
                              std::initializer_list<const char*> skip) {
    bool first_arg = true;
    for (const auto& [key, value] : j.members()) {
      bool skipped = false;
      for (const char* s : skip) {
        if (key == s) {
          skipped = true;
          break;
        }
      }
      if (skipped) continue;
      if (!first_arg) os << ',';
      first_arg = false;
      Json::write_escaped(os, key);
      os << ':';
      value.dump(os);
    }
  };

  for (const ExportLine& ev : events) {
    sep();
    if (ev.is_incident) {
      os << "{\"name\":\"" << get_str(ev.j, "kind")
         << "\",\"cat\":\"incident\",\"ph\":\"" << ev.incident_phase
         << "\",\"pid\":3,\"tid\":" << ev.incident_tid << ",\"ts\":";
      write_ts_us(os, ev.t);
      os << ",\"args\":{\"incident\":" << get_uint(ev.j, "id")
         << ",\"severity\":" << get_uint(ev.j, "severity")
         << ",\"magnitude\":" << get_uint(ev.j, "magnitude") << "}}";
      continue;
    }
    const std::string ph = get_str(ev.j, "ph");
    if (ev.is_packet) {
      const auto it = packet_tid.find(
          std::to_string(get_uint(ev.j, "src")) + ':' +
          std::to_string(get_uint(ev.j, "sport")) + "->" +
          std::to_string(get_uint(ev.j, "dst")) + ':' +
          std::to_string(get_uint(ev.j, "dport")));
      os << "{\"name\":\"" << get_str(ev.j, "kind") << ' '
         << get_str(ev.j, "dir") << "\",\"cat\":\"packet\",\"ph\":\"i\","
         << "\"s\":\"t\",\"pid\":2,\"tid\":"
         << (it != packet_tid.end() ? it->second : 0) << ",\"ts\":";
      write_ts_us(os, ev.t);
      os << ",\"args\":{";
      write_args(ev.j, {"t_ps"});
      os << "}}";
      continue;
    }
    const auto tid_it = span_tid.find(get_uint(ev.j, "flow"));
    os << "{\"name\":\"" << get_str(ev.j, "kind")
       << "\",\"cat\":\"span\",\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":"
       << (tid_it != span_tid.end() ? tid_it->second : 0) << ",\"ts\":";
    write_ts_us(os, ev.t);
    if (ph == "i") os << ",\"s\":\"t\"";
    os << ",\"args\":{\"span\":" << get_uint(ev.j, "id")
       << ",\"parent\":" << get_uint(ev.j, "parent");
    os << (ev.j.members().size() > 6 ? "," : "");
    write_args(ev.j, {"t_ps", "ph", "kind", "id", "parent", "flow"});
    os << "}}";
  }

  // Per-flow latency summaries ride along as instants at the trace end.
  for (const Json* j : latency_lines) {
    sep();
    const auto tid_it = span_tid.find(get_uint(*j, "flow"));
    os << "{\"name\":\"latency_breakdown\",\"cat\":\"span\",\"ph\":\"i\","
       << "\"s\":\"t\",\"pid\":1,\"tid\":"
       << (tid_it != span_tid.end() ? tid_it->second : 0) << ",\"ts\":";
    write_ts_us(os, t_max);
    os << ",\"args\":{";
    write_args(*j, {"ph"});
    os << "}}";
  }
  os << "\n]}\n";
  return 0;
}

// ---- explain: the per-flow root-cause doctor --------------------------

struct FlowRef {
  std::uint64_t span = 0;
  std::uint64_t src = 0, dst = 0, sport = 0, dport = 0;
};

std::string tuple_of(const FlowRef& f) {
  std::ostringstream os;
  os << f.src << ':' << f.sport << "->" << f.dst << ':' << f.dport;
  return os.str();
}

std::string fmt_ms(std::uint64_t ps) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ps) / 1e9);
  return buf;
}

/// One incident touching the flow: `member` = the incident's flow list
/// or span list names this flow; otherwise it merely overlaps the
/// flow's lifetime.
struct IncidentHit {
  const Json* j = nullptr;
  bool member = false;
  std::uint64_t overlap_ps = 0;
};

/// Picks the best evidence of `kind` in `hits`: members first, then
/// the longest time overlap.  `members_only` restricts to incidents
/// that name the flow — required for flow-scoped kinds (incast,
/// rto-storm, rwnd-rewrite-burst, flow-stall), where a same-window
/// bystander would pin the blame on somebody else's incident; pure
/// time correlation is only sound for queue-buildup, whose flow list
/// is empty by construction.  nullptr when nothing qualifies.
const Json* best_hit(const std::vector<IncidentHit>& hits,
                     std::string_view kind, bool members_only) {
  const Json* best = nullptr;
  bool best_member = false;
  std::uint64_t best_overlap = 0;
  for (const IncidentHit& h : hits) {
    if (members_only && !h.member) continue;
    if (get_str(*h.j, "kind") != kind) continue;
    if (best == nullptr || (h.member && !best_member) ||
        (h.member == best_member && h.overlap_ps > best_overlap)) {
      best = h.j;
      best_member = h.member;
      best_overlap = h.overlap_ps;
    }
  }
  return best;
}

int run_explain(const std::vector<Json>& lines, const Json& incidents,
                const std::string& selector, std::ostream& os) {
  // Resolve the selector against the flow registry ("F" lines): either
  // a flow-span id or the "src:sport->dst:dport" tuple.
  std::vector<FlowRef> flows;
  for (const Json& j : lines) {
    if (get_str(j, "ph") != "F") continue;
    FlowRef f;
    f.span = get_uint(j, "id");
    f.src = get_uint(j, "src");
    f.dst = get_uint(j, "dst");
    f.sport = get_uint(j, "sport");
    f.dport = get_uint(j, "dport");
    flows.push_back(f);
  }
  const bool numeric =
      !selector.empty() &&
      selector.find_first_not_of("0123456789") == std::string::npos;
  const FlowRef* target = nullptr;
  for (const FlowRef& f : flows) {
    if (numeric ? std::to_string(f.span) == selector
                : tuple_of(f) == selector) {
      target = &f;
      break;
    }
  }
  if (target == nullptr) {
    std::cerr << "error: flow \"" << selector << "\" not found ("
              << flows.size()
              << " flows in the span input; pass a flow-span id or "
              << "src:sport->dst:dport)\n";
    return 1;
  }

  // The flow's own span pair, its child spans and its latency line.
  std::uint64_t t0 = 0, t1 = 0, t_last = 0;
  bool saw_begin = false, saw_end = false;
  std::uint64_t total_bytes = 0, bytes_acked = 0, retransmits = 0;
  std::map<std::string, std::uint64_t> span_counts;
  std::uint64_t rto_count = 0, rwnd_writes = 0;
  const Json* latency = nullptr;
  for (const Json& j : lines) {
    const std::string ph = get_str(j, "ph");
    if (ph == "L") {
      if (get_uint(j, "flow") == target->span) latency = &j;
      continue;
    }
    if (ph != "B" && ph != "E" && ph != "i") continue;
    if (get_uint(j, "flow") != target->span) continue;
    const std::uint64_t t = get_uint(j, "t_ps");
    if (t > t_last) t_last = t;
    const std::string kind = get_str(j, "kind");
    if (kind == "flow" && get_uint(j, "id") == target->span) {
      if (ph == "B") {
        t0 = t;
        saw_begin = true;
        total_bytes = get_uint(j, "total_bytes");
      } else if (ph == "E") {
        t1 = t;
        saw_end = true;
        bytes_acked = get_uint(j, "bytes_acked");
        retransmits = get_uint(j, "retransmits");
      }
      continue;
    }
    if (ph == "B" || ph == "i") ++span_counts[kind];
    if (kind == "rto" && ph == "B") ++rto_count;
    if (kind == "rwnd_write") ++rwnd_writes;
  }
  if (!saw_begin) {
    std::cerr << "error: flow span " << target->span
              << " has no begin event in the span input\n";
    return 1;
  }
  const std::uint64_t t_end = saw_end ? t1 : t_last;
  const std::uint64_t fct_ps = t_end - t0;

  // Incidents touching the flow: members (the incident names this flow)
  // plus same-window bystanders.
  std::vector<IncidentHit> hits;
  if (incidents.is_array()) {
    for (const Json& inc : incidents.items()) {
      const std::uint64_t s = get_uint(inc, "start_ps");
      const std::uint64_t e = get_uint(inc, "end_ps");
      const std::uint64_t lo = std::max(s, t0);
      const std::uint64_t hi = std::min(e, t_end);
      IncidentHit h;
      h.j = &inc;
      h.overlap_ps = hi >= lo ? hi - lo : 0;
      if (const Json* spans = inc.find("spans")) {
        for (const Json& sp : spans->items()) {
          if (sp.as_uint() == target->span) h.member = true;
        }
      }
      if (!h.member) {
        if (const Json* fl = inc.find("flows")) {
          for (const Json& fj : fl->items()) {
            if (get_uint(fj, "src") == target->src &&
                get_uint(fj, "dst") == target->dst &&
                get_uint(fj, "sport") == target->sport &&
                get_uint(fj, "dport") == target->dport) {
              h.member = true;
            }
          }
        }
      }
      if (h.member || (e >= t0 && s <= t_end)) hits.push_back(h);
    }
  }

  // ---- the report ----
  os << "flow " << tuple_of(*target) << " (span " << target->span
     << ")\n";
  os << "  FCT " << fmt_ms(fct_ps) << " ms (t=" << fmt_ms(t0) << ".."
     << fmt_ms(t_end) << " ms)";
  // Long-lived bulk flows carry a practically-infinite byte target.
  const bool unbounded = total_bytes >= (std::uint64_t{1} << 62);
  if (saw_end) {
    os << ", " << bytes_acked << "/";
    if (unbounded) {
      os << "unbounded";
    } else {
      os << total_bytes;
    }
    os << " bytes acked, " << retransmits << " retransmits\n";
  } else if (unbounded) {
    os << ", long-lived flow still open at end of trace\n";
  } else {
    os << ", DID NOT COMPLETE (" << total_bytes << " bytes asked)\n";
  }

  static constexpr const char* kComponents[] = {
      "queueing", "transmission", "propagation", "retx_wait"};
  std::uint64_t comp_ps[4] = {};
  std::uint64_t comp_total = 0;
  if (latency != nullptr) {
    for (std::size_t c = 0; c < 4; ++c) {
      comp_ps[c] = get_uint(*latency,
                            (std::string(kComponents[c]) + "_ps").c_str());
      comp_total += comp_ps[c];
    }
  }
  if (comp_total > 0) {
    os << "  latency decomposition (per-packet sums):\n";
    for (std::size_t c = 0; c < 4; ++c) {
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%5.1f%%",
                    100.0 * static_cast<double>(comp_ps[c]) /
                        static_cast<double>(comp_total));
      os << "    " << kComponents[c]
         << std::string(13 - std::strlen(kComponents[c]), ' ') << pct
         << "  " << fmt_ms(comp_ps[c]) << " ms\n";
    }
  }
  if (!span_counts.empty()) {
    os << "  spans:";
    for (const auto& [kind, n] : span_counts) {
      os << ' ' << kind << '=' << n;
    }
    os << '\n';
  }
  // Members (the incident names this flow) always print; same-window
  // bystanders are capped — a long flow can overlap almost everything.
  os << "  incidents touching this flow: " << hits.size() << '\n';
  constexpr std::size_t kMaxBystanders = 10;
  std::size_t bystanders_shown = 0, bystanders_total = 0;
  for (const bool members_pass : {true, false}) {
    for (const IncidentHit& h : hits) {
      if (h.member != members_pass) continue;
      if (!h.member) {
        ++bystanders_total;
        if (bystanders_shown >= kMaxBystanders) continue;
        ++bystanders_shown;
      }
      os << "    #" << get_uint(*h.j, "id") << ' '
         << get_str(*h.j, "kind") << " at " << get_str(*h.j, "location")
         << " sev" << get_uint(*h.j, "severity") << ' '
         << fmt_ms(get_uint(*h.j, "start_ps")) << ".."
         << fmt_ms(get_uint(*h.j, "end_ps")) << " ms"
         << (h.member ? " (this flow)" : " (same time window)") << '\n';
    }
  }
  if (bystanders_total > bystanders_shown) {
    os << "    ... and " << (bystanders_total - bystanders_shown)
       << " more in the same time window\n";
  }

  // ---- the causal line ----
  std::vector<std::string> clauses;
  if (comp_total > 0) {
    std::size_t dom = 0;
    for (std::size_t c = 1; c < 4; ++c) {
      if (comp_ps[c] > comp_ps[dom]) dom = c;
    }
    std::ostringstream clause;
    clause << (100 * comp_ps[dom] / comp_total) << "% "
           << kComponents[dom];
    if (dom == 0) {
      if (const Json* qb =
              best_hit(hits, "queue-buildup", /*members_only=*/false)) {
        clause << " at " << get_str(*qb, "location")
               << " during queue-buildup #" << get_uint(*qb, "id");
      }
    }
    clauses.push_back(clause.str());
  }
  if (rto_count > 0) {
    std::ostringstream clause;
    clause << rto_count << (rto_count == 1 ? " RTO" : " RTOs");
    const Json* inside = best_hit(hits, "incast", /*members_only=*/true);
    if (inside == nullptr) {
      inside = best_hit(hits, "rto-storm", /*members_only=*/true);
    }
    if (inside != nullptr) {
      clause << " inside " << get_str(*inside, "kind") << " #"
             << get_uint(*inside, "id");
    }
    clauses.push_back(clause.str());
  }
  if (rwnd_writes > 0) {
    std::ostringstream clause;
    clause << "shim cut rwnd " << rwnd_writes << "x";
    if (const Json* rb =
            best_hit(hits, "rwnd-rewrite-burst", /*members_only=*/true)) {
      clause << " (rwnd-rewrite-burst #" << get_uint(*rb, "id") << ")";
    }
    clauses.push_back(clause.str());
  }
  for (const IncidentHit& h : hits) {
    // A stall incident asserts THIS flow made no progress, so only a
    // membership hit may contribute the clause.
    if (!h.member || get_str(*h.j, "kind") != "flow-stall") continue;
    std::ostringstream clause;
    clause << "stalled " << fmt_ms(get_uint(*h.j, "magnitude"))
           << " ms (flow-stall #" << get_uint(*h.j, "id") << ")";
    clauses.push_back(clause.str());
    break;
  }
  if (clauses.empty()) {
    os << "  verdict: no dominant cause found — the flow looks "
          "healthy\n";
  } else {
    os << "  slow because: ";
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      os << (i > 0 ? "; " : "") << clauses[i];
    }
    os << '\n';
  }
  return 0;
}

int run(std::istream& in, const char* name, const Options& opt, Summary& s,
        std::vector<Json>& export_lines) {
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++s.lines;
    std::string err;
    Json j = Json::parse(line, &err);
    if (!err.empty() || !j.is_object()) {
      std::cerr << name << ":" << lineno << ": parse error: "
                << (err.empty() ? "not an object" : err) << "\n";
      return 2;
    }
    switch (opt.mode) {
      case Mode::kExport:
      case Mode::kExplain:
        export_lines.push_back(std::move(j));
        break;
      case Mode::kFilter:
        if (matches(j, opt)) {
          std::cout << line << "\n";
          ++s.matched;
        }
        break;
      case Mode::kSummary:
        if (matches(j, opt)) accumulate(j, s);
        break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  Json incidents;  // stays null without --manifest (or no section)
  if (!opt.manifest_file.empty()) {
    const int rc = load_manifest_incidents(opt.manifest_file, incidents);
    if (rc != 0) return rc;
  }

  Summary s;
  std::vector<Json> export_lines;
  if (opt.files.empty()) {
    const int rc = run(std::cin, "<stdin>", opt, s, export_lines);
    if (rc != 0) return rc;
  } else {
    for (const std::string& file : opt.files) {
      std::ifstream f(file);
      if (!f) {
        std::cerr << "error: cannot open " << file << "\n";
        return 1;
      }
      const int rc = run(f, file.c_str(), opt, s, export_lines);
      if (rc != 0) return rc;
    }
  }

  if (opt.mode == Mode::kSummary) {
    print_summary(s);
  } else if (opt.mode == Mode::kExplain) {
    return run_explain(export_lines, incidents, opt.explain_flow,
                       std::cout);
  } else if (opt.mode == Mode::kExport) {
    if (opt.out_file.empty()) {
      return run_export(export_lines, incidents, std::cout);
    }
    std::ofstream out(opt.out_file, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot open " << opt.out_file
                << " for writing\n";
      return 1;
    }
    return run_export(export_lines, incidents, out);
  }
  return 0;
}
