// trace_inspect — summarize, filter or export the JSONL traces the
// simulator emits: packet traces (net::PacketTracer jsonl_sink) and
// span traces (sim::SpanTracer::dump_jsonl).
//
// Usage:
//   trace_inspect [summary] [options] [files...]      aggregate report
//   trace_inspect filter [options] [files...]         re-emit matching lines
//   trace_inspect print ...                           alias of filter
//   trace_inspect export [-o FILE] [files...]         Chrome trace-event JSON
//
// Options (summary/filter):
//   --kind K           keep only kind K (repeatable: OR across kinds)
//   --dir in|out       keep only one direction
//   --src N --dst N    filter by node id
//   --sport N --dport N filter by port
//   --since S --until S keep t in [S, U] (seconds, fractional ok)
//   --ce               keep only CE-marked packets
//
// `export` merges packet lines and span lines from every input into one
// Chrome trace-event JSON object (schema `hwatch.trace_export/v1`) that
// loads directly in Perfetto: span begin/end pairs become nested slices
// on one track per flow, packets and decisions become instants.
//
// Files default to stdin.  Exit codes: 0 ok, 1 bad usage or unreadable
// file, 2 malformed input line.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hpp"

namespace {

using hwatch::sim::Json;

enum class Mode { kSummary, kFilter, kExport };

struct Options {
  Mode mode = Mode::kSummary;
  std::vector<std::string> kinds;  // empty = all; else OR-match
  std::optional<std::string> dir;
  std::optional<std::uint64_t> src, dst, sport, dport;
  std::optional<double> since_s, until_s;
  bool ce_only = false;
  std::vector<std::string> files;  // empty = stdin
  std::string out_file;            // export only; empty = stdout
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [summary|filter|print|export] [options] "
      << "[files...]\n"
      << "  summary (default) | filter/print | export [-o FILE]\n"
      << "  --kind K (repeatable)   --dir in|out   --ce\n"
      << "  --src N --dst N --sport N --dport N\n"
      << "  --since SECONDS --until SECONDS\n";
  return 1;
}

bool parse_args(int argc, char** argv, Options& opt) {
  int i = 1;
  if (i < argc) {
    const std::string first = argv[i];
    if (first == "summary") {
      opt.mode = Mode::kSummary;
      ++i;
    } else if (first == "filter" || first == "print") {
      opt.mode = Mode::kFilter;
      ++i;
    } else if (first == "export") {
      opt.mode = Mode::kExport;
      ++i;
    }
  }
  auto need = [&](int& k) -> const char* {
    if (k + 1 >= argc) return nullptr;
    return argv[++k];
  };
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--summary") {
      opt.mode = Mode::kSummary;
    } else if (a == "--print") {
      opt.mode = Mode::kFilter;
    } else if (a == "--ce") {
      opt.ce_only = true;
    } else if (a == "--kind" && (v = need(i))) {
      opt.kinds.emplace_back(v);
    } else if (a == "--dir" && (v = need(i))) {
      opt.dir = v;
    } else if (a == "--src" && (v = need(i))) {
      opt.src = std::stoull(v);
    } else if (a == "--dst" && (v = need(i))) {
      opt.dst = std::stoull(v);
    } else if (a == "--sport" && (v = need(i))) {
      opt.sport = std::stoull(v);
    } else if (a == "--dport" && (v = need(i))) {
      opt.dport = std::stoull(v);
    } else if (a == "--since" && (v = need(i))) {
      opt.since_s = std::stod(v);
    } else if (a == "--until" && (v = need(i))) {
      opt.until_s = std::stod(v);
    } else if (a == "-o" && (v = need(i))) {
      if (opt.mode != Mode::kExport) return false;
      opt.out_file = v;
    } else if (!a.empty() && a[0] != '-') {
      opt.files.push_back(a);
    } else {
      return false;
    }
  }
  return true;
}

std::uint64_t get_uint(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_uint() : 0;
}

std::string get_str(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

bool matches(const Json& j, const Options& opt) {
  if (!opt.kinds.empty()) {
    const std::string k = get_str(j, "kind");
    if (std::find(opt.kinds.begin(), opt.kinds.end(), k) ==
        opt.kinds.end()) {
      return false;
    }
  }
  if (opt.dir && get_str(j, "dir") != *opt.dir) return false;
  if (opt.src && get_uint(j, "src") != *opt.src) return false;
  if (opt.dst && get_uint(j, "dst") != *opt.dst) return false;
  if (opt.sport && get_uint(j, "sport") != *opt.sport) return false;
  if (opt.dport && get_uint(j, "dport") != *opt.dport) return false;
  if (opt.ce_only && get_str(j, "ecn") != "ce") return false;
  const double t_s = static_cast<double>(get_uint(j, "t_ps")) / 1e12;
  if (opt.since_s && t_s < *opt.since_s) return false;
  if (opt.until_s && t_s > *opt.until_s) return false;
  return true;
}

struct FlowAgg {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ce = 0;
  std::uint64_t data = 0;
  std::uint64_t acks = 0;
  std::uint64_t syn = 0;
  std::uint64_t fin = 0;
  std::uint64_t probes = 0;
};

struct Summary {
  std::uint64_t lines = 0;
  std::uint64_t matched = 0;
  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::string, std::uint64_t> by_flag;  // S, F, R presence
  std::uint64_t ce = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t t_min = UINT64_MAX, t_max = 0;
  std::map<std::string, FlowAgg> flows;
};

void accumulate(const Json& j, Summary& s) {
  ++s.matched;
  ++s.by_kind[get_str(j, "kind")];
  const std::string flags = get_str(j, "flags");
  if (flags.find('S') != std::string::npos) ++s.by_flag["syn"];
  if (flags.find('F') != std::string::npos) ++s.by_flag["fin"];
  if (flags.find('R') != std::string::npos) ++s.by_flag["rst"];
  if (flags.find('E') != std::string::npos) ++s.by_flag["ece"];
  if (get_str(j, "ecn") == "ce") ++s.ce;
  s.wire_bytes += get_uint(j, "wire");
  s.payload_bytes += get_uint(j, "payload");
  const std::uint64_t t = get_uint(j, "t_ps");
  if (t < s.t_min) s.t_min = t;
  if (t > s.t_max) s.t_max = t;
  std::ostringstream key;
  key << get_uint(j, "src") << ':' << get_uint(j, "sport") << " -> "
      << get_uint(j, "dst") << ':' << get_uint(j, "dport");
  FlowAgg& f = s.flows[key.str()];
  ++f.packets;
  f.bytes += get_uint(j, "wire");
  if (get_str(j, "ecn") == "ce") ++f.ce;
  const std::string kind = get_str(j, "kind");
  if (kind == "probe") {
    ++f.probes;
  } else {
    if (get_uint(j, "payload") > 0) {
      ++f.data;
    } else if (flags.find('S') == std::string::npos &&
               flags.find('F') == std::string::npos) {
      ++f.acks;
    }
    if (flags.find('S') != std::string::npos) ++f.syn;
    if (flags.find('F') != std::string::npos) ++f.fin;
  }
}

void print_summary(const Summary& s) {
  std::cout << "lines: " << s.lines << "  matched: " << s.matched << "\n";
  if (s.matched == 0) return;
  std::cout << "span: " << static_cast<double>(s.t_min) / 1e12 << "s .. "
            << static_cast<double>(s.t_max) / 1e12 << "s\n";
  std::cout << "by kind:";
  for (const auto& [k, n] : s.by_kind) std::cout << "  " << k << "=" << n;
  std::cout << "\nflags:";
  for (const auto& [k, n] : s.by_flag) std::cout << "  " << k << "=" << n;
  std::cout << "\nce-marked: " << s.ce << " ("
            << 100.0 * static_cast<double>(s.ce) /
                   static_cast<double>(s.matched)
            << "%)\n";
  std::cout << "bytes: wire=" << s.wire_bytes
            << " payload=" << s.payload_bytes << "\n";

  std::vector<std::pair<std::string, FlowAgg>> top(s.flows.begin(),
                                                   s.flows.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second.packets > b.second.packets;
  });
  std::cout << "flows: " << top.size() << " (top 10 by packets)\n";
  for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
    const FlowAgg& f = top[i].second;
    std::cout << "  " << top[i].first << "  pkts=" << f.packets
              << " bytes=" << f.bytes << " ce=" << f.ce
              << " data=" << f.data << " acks=" << f.acks
              << " syn=" << f.syn << " fin=" << f.fin
              << " probes=" << f.probes << "\n";
  }
}

// ---- export: merged Chrome trace-event JSON ---------------------------

/// Exact ps -> us fixed point (same formatting as SpanTracer's native
/// export, so merged output stays byte-deterministic).
void write_ts_us(std::ostream& os, std::uint64_t ps) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                static_cast<unsigned long long>(ps / 1000000u),
                static_cast<unsigned long long>(ps % 1000000u));
  os << buf;
}

struct ExportLine {
  std::uint64_t t = 0;
  std::size_t order = 0;  // input order; ties on t keep it (nesting)
  Json j;
  bool is_packet = false;
};

int run_export(const std::vector<Json>& lines, std::ostream& os) {
  // First pass: flow-track registry (span flows from "F" lines, packet
  // flows from 4-tuples in order of first appearance) and the dropped
  // count.
  std::map<std::uint64_t, std::size_t> span_tid;    // flow span -> tid
  std::vector<std::string> span_names;
  std::map<std::string, std::size_t> packet_tid;    // tuple -> tid
  std::vector<std::string> packet_names;
  std::uint64_t dropped = 0;
  std::vector<ExportLine> events;
  std::uint64_t t_max = 0;
  std::vector<const Json*> latency_lines;

  for (const Json& j : lines) {
    const std::string ph = get_str(j, "ph");
    if (ph == "F") {
      std::ostringstream name;
      name << "flow " << get_uint(j, "src") << ':' << get_uint(j, "sport")
           << "->" << get_uint(j, "dst") << ':' << get_uint(j, "dport");
      span_tid.emplace(get_uint(j, "id"), span_tid.size() + 1);
      span_names.push_back(name.str());
      continue;
    }
    if (ph == "D") {
      dropped += get_uint(j, "dropped_events");
      continue;
    }
    if (ph == "L") {
      latency_lines.push_back(&j);
      continue;
    }
    ExportLine ev;
    ev.t = get_uint(j, "t_ps");
    ev.order = events.size();
    ev.is_packet = j.find("dir") != nullptr;
    if (ev.is_packet) {
      std::ostringstream key;
      key << get_uint(j, "src") << ':' << get_uint(j, "sport") << "->"
          << get_uint(j, "dst") << ':' << get_uint(j, "dport");
      if (packet_tid.emplace(key.str(), packet_tid.size() + 1).second) {
        packet_names.push_back(key.str());
      }
    }
    if (ev.t > t_max) t_max = ev.t;
    ev.j = j;
    events.push_back(std::move(ev));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ExportLine& a, const ExportLine& b) {
                     return a.t < b.t;
                   });

  os << "{\"schema\":\"hwatch.trace_export/v1\",\"displayTimeUnit\":\"ms\","
     << "\"dropped_events\":" << dropped << ",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  const auto meta = [&](int pid, std::uint64_t tid, const char* what,
                        const std::string& name) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"" << what << "\",\"args\":{\"name\":";
    Json::write_escaped(os, name);
    os << "}}";
  };
  meta(1, 0, "process_name", "spans");
  for (std::size_t i = 0; i < span_names.size(); ++i) {
    meta(1, i + 1, "thread_name", span_names[i]);
  }
  if (!packet_names.empty()) {
    meta(2, 0, "process_name", "packets");
    for (std::size_t i = 0; i < packet_names.size(); ++i) {
      meta(2, i + 1, "thread_name", packet_names[i]);
    }
  }

  const auto write_args = [&](const Json& j,
                              std::initializer_list<const char*> skip) {
    bool first_arg = true;
    for (const auto& [key, value] : j.members()) {
      bool skipped = false;
      for (const char* s : skip) {
        if (key == s) {
          skipped = true;
          break;
        }
      }
      if (skipped) continue;
      if (!first_arg) os << ',';
      first_arg = false;
      Json::write_escaped(os, key);
      os << ':';
      value.dump(os);
    }
  };

  for (const ExportLine& ev : events) {
    sep();
    const std::string ph = get_str(ev.j, "ph");
    if (ev.is_packet) {
      const auto it = packet_tid.find(
          std::to_string(get_uint(ev.j, "src")) + ':' +
          std::to_string(get_uint(ev.j, "sport")) + "->" +
          std::to_string(get_uint(ev.j, "dst")) + ':' +
          std::to_string(get_uint(ev.j, "dport")));
      os << "{\"name\":\"" << get_str(ev.j, "kind") << ' '
         << get_str(ev.j, "dir") << "\",\"cat\":\"packet\",\"ph\":\"i\","
         << "\"s\":\"t\",\"pid\":2,\"tid\":"
         << (it != packet_tid.end() ? it->second : 0) << ",\"ts\":";
      write_ts_us(os, ev.t);
      os << ",\"args\":{";
      write_args(ev.j, {"t_ps"});
      os << "}}";
      continue;
    }
    const auto tid_it = span_tid.find(get_uint(ev.j, "flow"));
    os << "{\"name\":\"" << get_str(ev.j, "kind")
       << "\",\"cat\":\"span\",\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":"
       << (tid_it != span_tid.end() ? tid_it->second : 0) << ",\"ts\":";
    write_ts_us(os, ev.t);
    if (ph == "i") os << ",\"s\":\"t\"";
    os << ",\"args\":{\"span\":" << get_uint(ev.j, "id")
       << ",\"parent\":" << get_uint(ev.j, "parent");
    os << (ev.j.members().size() > 6 ? "," : "");
    write_args(ev.j, {"t_ps", "ph", "kind", "id", "parent", "flow"});
    os << "}}";
  }

  // Per-flow latency summaries ride along as instants at the trace end.
  for (const Json* j : latency_lines) {
    sep();
    const auto tid_it = span_tid.find(get_uint(*j, "flow"));
    os << "{\"name\":\"latency_breakdown\",\"cat\":\"span\",\"ph\":\"i\","
       << "\"s\":\"t\",\"pid\":1,\"tid\":"
       << (tid_it != span_tid.end() ? tid_it->second : 0) << ",\"ts\":";
    write_ts_us(os, t_max);
    os << ",\"args\":{";
    write_args(*j, {"ph"});
    os << "}}";
  }
  os << "\n]}\n";
  return 0;
}

int run(std::istream& in, const char* name, const Options& opt, Summary& s,
        std::vector<Json>& export_lines) {
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++s.lines;
    std::string err;
    Json j = Json::parse(line, &err);
    if (!err.empty() || !j.is_object()) {
      std::cerr << name << ":" << lineno << ": parse error: "
                << (err.empty() ? "not an object" : err) << "\n";
      return 2;
    }
    switch (opt.mode) {
      case Mode::kExport:
        export_lines.push_back(std::move(j));
        break;
      case Mode::kFilter:
        if (matches(j, opt)) {
          std::cout << line << "\n";
          ++s.matched;
        }
        break;
      case Mode::kSummary:
        if (matches(j, opt)) accumulate(j, s);
        break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  Summary s;
  std::vector<Json> export_lines;
  if (opt.files.empty()) {
    const int rc = run(std::cin, "<stdin>", opt, s, export_lines);
    if (rc != 0) return rc;
  } else {
    for (const std::string& file : opt.files) {
      std::ifstream f(file);
      if (!f) {
        std::cerr << "error: cannot open " << file << "\n";
        return 1;
      }
      const int rc = run(f, file.c_str(), opt, s, export_lines);
      if (rc != 0) return rc;
    }
  }

  if (opt.mode == Mode::kSummary) {
    print_summary(s);
  } else if (opt.mode == Mode::kExport) {
    if (opt.out_file.empty()) return run_export(export_lines, std::cout);
    std::ofstream out(opt.out_file, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot open " << opt.out_file
                << " for writing\n";
      return 1;
    }
    return run_export(export_lines, out);
  }
  return 0;
}
