// trace_inspect — summarize or filter the JSONL packet traces the
// simulator emits (PacketTracer with a jsonl_sink, or dump_jsonl()).
//
// Usage:
//   trace_inspect [options] [file.jsonl]     (default: stdin)
//
// Options:
//   --summary          aggregate report (default)
//   --print            re-emit the matching lines verbatim
//   --kind tcp|probe   keep only one packet kind
//   --dir in|out       keep only one direction
//   --src N --dst N    filter by node id
//   --sport N --dport N filter by port
//   --since S --until S keep t in [S, U] (seconds, fractional ok)
//   --ce               keep only CE-marked packets
//
// Exit codes: 0 ok, 1 bad usage, 2 malformed input line.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hpp"

namespace {

using hwatch::sim::Json;

struct Options {
  bool print = false;
  std::optional<std::string> kind;
  std::optional<std::string> dir;
  std::optional<std::uint64_t> src, dst, sport, dport;
  std::optional<double> since_s, until_s;
  bool ce_only = false;
  std::string file;  // empty = stdin
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] [trace.jsonl]\n"
      << "  --summary | --print\n"
      << "  --kind tcp|probe   --dir in|out   --ce\n"
      << "  --src N --dst N --sport N --dport N\n"
      << "  --since SECONDS --until SECONDS\n";
  return 1;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--summary") {
      opt.print = false;
    } else if (a == "--print") {
      opt.print = true;
    } else if (a == "--ce") {
      opt.ce_only = true;
    } else if (a == "--kind" && (v = need(i))) {
      opt.kind = v;
    } else if (a == "--dir" && (v = need(i))) {
      opt.dir = v;
    } else if (a == "--src" && (v = need(i))) {
      opt.src = std::stoull(v);
    } else if (a == "--dst" && (v = need(i))) {
      opt.dst = std::stoull(v);
    } else if (a == "--sport" && (v = need(i))) {
      opt.sport = std::stoull(v);
    } else if (a == "--dport" && (v = need(i))) {
      opt.dport = std::stoull(v);
    } else if (a == "--since" && (v = need(i))) {
      opt.since_s = std::stod(v);
    } else if (a == "--until" && (v = need(i))) {
      opt.until_s = std::stod(v);
    } else if (!a.empty() && a[0] != '-') {
      opt.file = a;
    } else {
      return false;
    }
  }
  return true;
}

std::uint64_t get_uint(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_uint() : 0;
}

std::string get_str(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

bool matches(const Json& j, const Options& opt) {
  if (opt.kind && get_str(j, "kind") != *opt.kind) return false;
  if (opt.dir && get_str(j, "dir") != *opt.dir) return false;
  if (opt.src && get_uint(j, "src") != *opt.src) return false;
  if (opt.dst && get_uint(j, "dst") != *opt.dst) return false;
  if (opt.sport && get_uint(j, "sport") != *opt.sport) return false;
  if (opt.dport && get_uint(j, "dport") != *opt.dport) return false;
  if (opt.ce_only && get_str(j, "ecn") != "ce") return false;
  const double t_s = static_cast<double>(get_uint(j, "t_ps")) / 1e12;
  if (opt.since_s && t_s < *opt.since_s) return false;
  if (opt.until_s && t_s > *opt.until_s) return false;
  return true;
}

struct FlowAgg {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ce = 0;
};

struct Summary {
  std::uint64_t lines = 0;
  std::uint64_t matched = 0;
  std::map<std::string, std::uint64_t> by_kind;
  std::map<std::string, std::uint64_t> by_flag;  // S, F, R presence
  std::uint64_t ce = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t t_min = UINT64_MAX, t_max = 0;
  std::map<std::string, FlowAgg> flows;
};

void accumulate(const Json& j, Summary& s) {
  ++s.matched;
  ++s.by_kind[get_str(j, "kind")];
  const std::string flags = get_str(j, "flags");
  if (flags.find('S') != std::string::npos) ++s.by_flag["syn"];
  if (flags.find('F') != std::string::npos) ++s.by_flag["fin"];
  if (flags.find('R') != std::string::npos) ++s.by_flag["rst"];
  if (flags.find('E') != std::string::npos) ++s.by_flag["ece"];
  if (get_str(j, "ecn") == "ce") ++s.ce;
  s.wire_bytes += get_uint(j, "wire");
  s.payload_bytes += get_uint(j, "payload");
  const std::uint64_t t = get_uint(j, "t_ps");
  if (t < s.t_min) s.t_min = t;
  if (t > s.t_max) s.t_max = t;
  std::ostringstream key;
  key << get_uint(j, "src") << ':' << get_uint(j, "sport") << " -> "
      << get_uint(j, "dst") << ':' << get_uint(j, "dport");
  FlowAgg& f = s.flows[key.str()];
  ++f.packets;
  f.bytes += get_uint(j, "wire");
  if (get_str(j, "ecn") == "ce") ++f.ce;
}

void print_summary(const Summary& s) {
  std::cout << "lines: " << s.lines << "  matched: " << s.matched << "\n";
  if (s.matched == 0) return;
  std::cout << "span: " << static_cast<double>(s.t_min) / 1e12 << "s .. "
            << static_cast<double>(s.t_max) / 1e12 << "s\n";
  std::cout << "by kind:";
  for (const auto& [k, n] : s.by_kind) std::cout << "  " << k << "=" << n;
  std::cout << "\nflags:";
  for (const auto& [k, n] : s.by_flag) std::cout << "  " << k << "=" << n;
  std::cout << "\nce-marked: " << s.ce << " ("
            << 100.0 * static_cast<double>(s.ce) /
                   static_cast<double>(s.matched)
            << "%)\n";
  std::cout << "bytes: wire=" << s.wire_bytes
            << " payload=" << s.payload_bytes << "\n";

  std::vector<std::pair<std::string, FlowAgg>> top(s.flows.begin(),
                                                   s.flows.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second.packets > b.second.packets;
  });
  std::cout << "flows: " << top.size() << " (top 10 by packets)\n";
  for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
    std::cout << "  " << top[i].first << "  pkts=" << top[i].second.packets
              << " bytes=" << top[i].second.bytes
              << " ce=" << top[i].second.ce << "\n";
  }
}

int run(std::istream& in, const Options& opt) {
  Summary s;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ++s.lines;
    std::string err;
    const Json j = Json::parse(line, &err);
    if (!err.empty() || !j.is_object()) {
      std::cerr << "line " << lineno << ": parse error: "
                << (err.empty() ? "not an object" : err) << "\n";
      return 2;
    }
    if (!matches(j, opt)) continue;
    if (opt.print) {
      std::cout << line << "\n";
      ++s.matched;
    } else {
      accumulate(j, s);
    }
  }
  if (!opt.print) print_summary(s);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);
  if (opt.file.empty()) return run(std::cin, opt);
  std::ifstream f(opt.file);
  if (!f) {
    std::cerr << "error: cannot open " << opt.file << "\n";
    return 1;
  }
  return run(f, opt);
}
