// Tokenizer for hwlint: good enough to reassemble qualified names and
// spot banned constructs, cheap enough to run over the whole tree in
// milliseconds.  Not a C++ parser — comments, string/char literals
// (raw strings included) and preprocessor directives are stripped so
// rule code only ever sees code tokens.

#include "hwlint/hwlint.hpp"

#include <algorithm>
#include <cctype>
#include <string>

namespace hwlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses the text of one comment for a `hwlint:` marker.  Returns true
/// when a marker is present; `ok` says whether it parsed as
/// `allow(rule[, rule...])`.
bool parse_marker(std::string_view comment, bool& ok,
                  std::vector<std::string>& rules) {
  const std::size_t at = comment.find("hwlint:");
  if (at == std::string_view::npos) return false;
  ok = false;
  rules.clear();
  std::size_t i = at + 7;
  while (i < comment.size() && comment[i] == ' ') ++i;
  // Only `hwlint:` followed by `allow` is a marker; anything else is
  // prose *about* hwlint (docs, this file) and is ignored.  A malformed
  // marker is therefore one where `allow` is present but the rule list
  // does not parse — that is still reported, so a typo like
  // `allow nondeterminism` (missing parens) cannot disable the gate.
  if (comment.compare(i, 5, "allow") != 0) return false;
  i += 5;
  while (i < comment.size() && comment[i] == ' ') ++i;
  if (i >= comment.size() || comment[i] != '(') return true;
  ++i;
  const std::size_t close = comment.find(')', i);
  if (close == std::string_view::npos) return true;
  std::string cur;
  for (; i < close; ++i) {
    const char c = comment[i];
    if (c == ',' ) {
      if (!cur.empty()) rules.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur += c;
    }
  }
  if (!cur.empty()) rules.push_back(cur);
  if (rules.empty()) return true;  // allow() with nothing inside
  if (rules.size() == 1 && rules[0] == "*") rules.clear();  // allow-all
  ok = true;
  return true;
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  // Offset of the first character of the current line, to decide
  // whether a comment stands alone on its line.
  std::size_t line_start = 0;

  auto only_ws_before = [&](std::size_t pos) {
    for (std::size_t k = line_start; k < pos; ++k) {
      if (src[k] != ' ' && src[k] != '\t') return false;
    }
    return true;
  };

  auto note_comment = [&](std::size_t begin, std::size_t end, int at_line,
                          bool alone) {
    bool ok = false;
    std::vector<std::string> rules;
    if (!parse_marker(src.substr(begin, end - begin), ok, rules)) return;
    if (!ok) {
      out.malformed_suppressions.push_back(at_line);
      return;
    }
    out.suppressions.push_back(Suppression{at_line, alone, std::move(rules)});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: collect `#include` targets for the
    // include-graph pass, then skip to end of line (honouring
    // \-splices).
    if (c == '#' && only_ws_before(i)) {
      std::size_t k = i + 1;
      while (k < n && (src[k] == ' ' || src[k] == '\t')) ++k;
      if (src.compare(k, 7, "include") == 0) {
        k += 7;
        while (k < n && (src[k] == ' ' || src[k] == '\t')) ++k;
        if (k < n && (src[k] == '"' || src[k] == '<')) {
          const bool angled = src[k] == '<';
          const char close = angled ? '>' : '"';
          const std::size_t begin = k + 1;
          std::size_t end = begin;
          while (end < n && src[end] != close && src[end] != '\n') ++end;
          if (end < n && src[end] == close) {
            out.includes.push_back(IncludeDirective{
                line, angled, std::string(src.substr(begin, end - begin))});
          }
        }
      }
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          line_start = i;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const bool alone = only_ws_before(i);
      const std::size_t begin = i;
      while (i < n && src[i] != '\n') ++i;
      note_comment(begin, i, line, alone);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const bool alone = only_ws_before(i);
      const int at_line = line;
      const std::size_t begin = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      const std::size_t end = (i + 1 < n) ? i : n;
      i = (i + 1 < n) ? i + 2 : n;
      note_comment(begin, end, at_line, alone);
      continue;
    }
    // String literal (with a possible raw-string delimiter).  The
    // encoding prefix (u8, L, ...) was already emitted as an identifier
    // token; detect rawness by the 'R' directly before the quote.
    if (c == '"') {
      const bool raw = i > 0 && src[i - 1] == 'R';
      ++i;
      if (raw) {
        std::string delim;
        while (i < n && src[i] != '(') delim += src[i++];
        ++i;  // '('
        const std::string close = ")" + delim + "\"";
        const std::size_t end = src.find(close, i);
        for (std::size_t k = i; k < std::min(end, n); ++k) {
          if (src[k] == '\n') {
            ++line;
            line_start = k + 1;
          }
        }
        i = end == std::string_view::npos ? n : end + close.size();
      } else {
        while (i < n && src[i] != '"') {
          if (src[i] == '\\' && i + 1 < n) ++i;
          if (src[i] == '\n') {
            ++line;
            line_start = i + 1;
          }
          ++i;
        }
        if (i < n) ++i;  // closing quote
      }
      continue;
    }
    // Character literal.  A '\'' directly after an identifier character
    // or digit is a C++14 digit separator / part of a number suffix and
    // is handled by the number scanner, so reaching here means a real
    // char literal.
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t begin = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back(
          Token{Token::Kind::kIdentifier, std::string(src.substr(begin, i - begin)), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t begin = i;
      while (i < n && (ident_char(src[i]) || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > begin &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')) ||
                       src[i] == '.')) {
        ++i;
      }
      out.tokens.push_back(
          Token{Token::Kind::kNumber, std::string(src.substr(begin, i - begin)), line});
      continue;
    }
    // Punctuation.  `::`, `->`, the equality operators and the simple
    // compound assignments are kept as single tokens (the
    // fp-determinism pass keys on `==`/`!=`/`+=`/...); everything else
    // is one character (so `>>` closing two templates is two `>`s,
    // which is exactly what the template-skipper wants).
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back(Token{Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back(Token{Token::Kind::kPunct, "->", line});
      i += 2;
      continue;
    }
    if ((c == '=' || c == '!' || c == '+' || c == '-' || c == '*' ||
         c == '/') &&
        i + 1 < n && src[i + 1] == '=') {
      out.tokens.push_back(
          Token{Token::Kind::kPunct, std::string(1, c) + "=", line});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace hwlint
