// File walking, allowlist handling and report rendering for hwlint.
//
// Two passes: the first lexes every file and collects names declared as
// unordered containers anywhere in the tree (so a member declared in a
// header is caught when its .cpp iterates it); the second runs the
// rules.  File order is sorted, so diagnostics and the JSON report are
// deterministic regardless of directory-iteration order.

#include "hwlint/hwlint.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

namespace hwlint {

namespace fs = std::filesystem;

namespace {

const char* kDefaultDirs[] = {"src", "bench", "tests", "tools", "examples"};

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".ipp";
}

std::string to_rel(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  return rel.generic_string();
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view path) {
  if (!pattern.empty() && pattern.back() == '/') {
    // Directory prefix: everything under it matches.
    return path.substr(0, pattern.size()) == pattern;
  }
  // Classic backtracking fnmatch; `*` crosses '/' on purpose (patterns
  // like `src/sim/random.*` and `tests/*_fixture*` read naturally).
  std::size_t p = 0, s = 0, star = std::string_view::npos, mark = 0;
  while (s < path.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == path[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool Allowlist::excluded(const std::string& rel) const {
  for (const std::string& g : excludes) {
    if (glob_match(g, rel)) return true;
  }
  return false;
}

bool Allowlist::allowed(const std::string& rel, const std::string& rule) const {
  for (const AllowEntry& e : allows) {
    if ((e.rule == "*" || e.rule == rule) && glob_match(e.glob, rel)) {
      return true;
    }
  }
  return false;
}

bool parse_allowlist(std::string_view text, Allowlist& out, std::string& err) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;  // blank / comment-only
    if (verb == "allow") {
      AllowEntry e;
      if (!(ls >> e.rule >> e.glob)) {
        err = "allowlist line " + std::to_string(lineno) +
              ": expected `allow <rule> <glob>`";
        return false;
      }
      out.allows.push_back(std::move(e));
    } else if (verb == "exclude") {
      std::string glob;
      if (!(ls >> glob)) {
        err = "allowlist line " + std::to_string(lineno) +
              ": expected `exclude <glob>`";
        return false;
      }
      out.excludes.push_back(std::move(glob));
    } else {
      err = "allowlist line " + std::to_string(lineno) +
            ": unknown directive `" + verb + "`";
      return false;
    }
    std::string extra;
    if (ls >> extra) {
      err = "allowlist line " + std::to_string(lineno) +
            ": trailing junk `" + extra + "`";
      return false;
    }
  }
  return true;
}

int run_lint(const Options& opts, Report& report, std::ostream& err) {
  std::error_code ec;
  const fs::path root = fs::absolute(opts.root, ec);
  if (ec || !fs::is_directory(root)) {
    err << "hwlint: root is not a directory: " << opts.root.string() << "\n";
    return 2;
  }

  Allowlist allow;
  fs::path allow_path = opts.allowlist;
  const bool allow_explicit = !allow_path.empty();
  if (!allow_explicit) allow_path = root / "tools" / "hwlint" / "allowlist.txt";
  if (fs::exists(allow_path)) {
    std::string text;
    if (!read_file(allow_path, text)) {
      err << "hwlint: cannot read allowlist " << allow_path.string() << "\n";
      return 2;
    }
    std::string perr;
    if (!parse_allowlist(text, allow, perr)) {
      err << "hwlint: " << allow_path.string() << ": " << perr << "\n";
      return 2;
    }
  } else if (allow_explicit) {
    err << "hwlint: allowlist not found: " << allow_path.string() << "\n";
    return 2;
  }

  // Resolve the scan set.
  std::vector<fs::path> roots;
  if (opts.paths.empty()) {
    for (const char* d : kDefaultDirs) {
      if (fs::is_directory(root / d)) roots.push_back(root / d);
    }
  } else {
    for (const std::string& p : opts.paths) {
      fs::path fp = fs::path(p).is_absolute() ? fs::path(p) : root / p;
      if (!fs::exists(fp)) {
        err << "hwlint: no such file or directory: " << p << "\n";
        return 2;
      }
      roots.push_back(std::move(fp));
    }
  }

  std::vector<fs::path> files;
  for (const fs::path& r : roots) {
    if (fs::is_regular_file(r)) {
      files.push_back(r);
      continue;
    }
    for (auto it = fs::recursive_directory_iterator(r, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && lintable_extension(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: read everything, collect unordered-container names tree-wide.
  std::map<std::string, std::string> sources;  // rel -> content (sorted)
  std::set<std::string> unordered_names;
  for (const fs::path& f : files) {
    const std::string rel = to_rel(f, root);
    if (allow.excluded(rel)) continue;
    std::string content;
    if (!read_file(f, content)) {
      err << "hwlint: cannot read " << rel << "\n";
      return 2;
    }
    const LexResult lexed = lex(content);
    std::set<std::string> names = collect_unordered_names(lexed.tokens);
    unordered_names.insert(names.begin(), names.end());
    sources.emplace(rel, std::move(content));
  }

  // Pass 2: rules.
  for (const auto& [rel, content] : sources) {
    ++report.files_scanned;
    std::vector<Violation> vs =
        check_source(rel, content, unordered_names, &report.suppressed);
    for (Violation& v : vs) {
      if (allow.allowed(rel, v.rule)) {
        ++report.allowlisted;
      } else {
        report.violations.push_back(std::move(v));
      }
    }
  }
  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return report.violations.empty() ? 0 : 1;
}

void print_text(const Report& report, std::ostream& out) {
  for (const Violation& v : report.violations) {
    out << v.file << ":" << v.line << ": " << v.rule << ": " << v.message
        << "\n";
  }
  out << "hwlint: " << report.files_scanned << " files, "
      << report.violations.size() << " violation"
      << (report.violations.size() == 1 ? "" : "s") << " ("
      << report.suppressed << " suppressed inline, " << report.allowlisted
      << " allowlisted)\n";
}

void print_json(const Report& report, const Options& opts, std::ostream& out) {
  out << "{\n  \"schema\": \"hwatch.hwlint_report/v1\",\n  \"root\": \"";
  json_escape(out, opts.root.generic_string());
  out << "\",\n  \"files_scanned\": " << report.files_scanned
      << ",\n  \"suppressed\": " << report.suppressed
      << ",\n  \"allowlisted\": " << report.allowlisted
      << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Violation& v = report.violations[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"";
    json_escape(out, v.file);
    out << "\", \"line\": " << v.line << ", \"rule\": \"";
    json_escape(out, v.rule);
    out << "\", \"message\": \"";
    json_escape(out, v.message);
    out << "\"}";
  }
  out << (report.violations.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace hwlint
