// File walking, allowlist handling, parallel scanning and report
// rendering for hwlint.
//
// Three phases: (1) read + lex every file, in parallel — each file is
// lexed exactly once and the token stream is shared by every pass; (2)
// fold the lexed files into the TreeIndex in sorted path order (so a
// member declared in a header is honoured when its .cpp is checked, and
// evidence strings are deterministic); (3) run the per-file rules, in
// parallel, plus the whole-program include-graph pass.  Results are
// merged in sorted file order, so diagnostics and the JSON report are
// byte-identical regardless of directory-iteration order or --jobs.

#include "hwlint/hwlint.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

namespace hwlint {

namespace fs = std::filesystem;

namespace {

const char* kDefaultDirs[] = {"src", "bench", "tests", "tools", "examples"};

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".ipp";
}

std::string to_rel(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  return rel.generic_string();
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

unsigned worker_count(unsigned requested, std::size_t work_items) {
  unsigned jobs = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = std::min<unsigned>(jobs, 16);
  jobs = std::min<std::size_t>(jobs, std::max<std::size_t>(work_items, 1));
  return jobs;
}

/// Runs fn(i) for every i in [0, count) across `jobs` threads.  Work
/// stealing via a shared atomic counter; callers write results into
/// per-index slots, so no other synchronization is needed and merge
/// order is up to the caller.
template <typename Fn>
void parallel_for(std::size_t count, unsigned jobs, Fn&& fn) {
  if (count == 0) return;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs - 1);
  for (unsigned t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view path) {
  if (!pattern.empty() && pattern.back() == '/') {
    // Directory pattern: everything under the prefix matches.  The
    // prefix itself may contain wildcards (`tests/*/fixtures/`), so
    // rewrite as `<prefix>*` instead of a literal prefix compare.
    const std::string rewritten = std::string(pattern) + "*";
    return glob_match(rewritten, path);
  }
  // Classic backtracking fnmatch; `*` crosses '/' on purpose (patterns
  // like `src/sim/random.*` and `tests/*_fixture*` read naturally).
  std::size_t p = 0, s = 0, star = std::string_view::npos, mark = 0;
  while (s < path.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == path[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool Allowlist::excluded(const std::string& rel) const {
  for (const std::string& g : excludes) {
    if (glob_match(g, rel)) return true;
  }
  return false;
}

bool Allowlist::allowed(const std::string& rel, const std::string& rule) const {
  for (const AllowEntry& e : allows) {
    if ((e.rule == "*" || e.rule == rule) && glob_match(e.glob, rel)) {
      return true;
    }
  }
  return false;
}

bool parse_allowlist(std::string_view text, Allowlist& out, std::string& err) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;  // blank / comment-only
    if (verb == "allow") {
      AllowEntry e;
      if (!(ls >> e.rule >> e.glob)) {
        err = "allowlist line " + std::to_string(lineno) +
              ": expected `allow <rule> <glob>`";
        return false;
      }
      // A typo'd rule name would silently allow nothing (or, worse,
      // silently stop allowing once a rule is renamed) — fail loudly.
      if (e.rule != "*" && !known_rule(e.rule)) {
        err = "allowlist line " + std::to_string(lineno) +
              ": unknown rule `" + e.rule + "`";
        return false;
      }
      out.allows.push_back(std::move(e));
    } else if (verb == "exclude") {
      std::string glob;
      if (!(ls >> glob)) {
        err = "allowlist line " + std::to_string(lineno) +
              ": expected `exclude <glob>`";
        return false;
      }
      out.excludes.push_back(std::move(glob));
    } else {
      err = "allowlist line " + std::to_string(lineno) +
            ": unknown directive `" + verb + "`";
      return false;
    }
    std::string extra;
    if (ls >> extra) {
      err = "allowlist line " + std::to_string(lineno) +
            ": trailing junk `" + extra + "`";
      return false;
    }
  }
  return true;
}

int run_lint(const Options& opts, Report& report, std::ostream& err) {
  std::error_code ec;
  const fs::path root = fs::absolute(opts.root, ec);
  if (ec || !fs::is_directory(root)) {
    err << "hwlint: root is not a directory: " << opts.root.string() << "\n";
    return 2;
  }

  Allowlist allow;
  fs::path allow_path = opts.allowlist;
  const bool allow_explicit = !allow_path.empty();
  if (!allow_explicit) allow_path = root / "tools" / "hwlint" / "allowlist.txt";
  if (fs::exists(allow_path)) {
    std::string text;
    if (!read_file(allow_path, text)) {
      err << "hwlint: cannot read allowlist " << allow_path.string() << "\n";
      return 2;
    }
    std::string perr;
    if (!parse_allowlist(text, allow, perr)) {
      err << "hwlint: " << allow_path.string() << ": " << perr << "\n";
      return 2;
    }
  } else if (allow_explicit) {
    err << "hwlint: allowlist not found: " << allow_path.string() << "\n";
    return 2;
  }

  // Resolve the scan set.
  std::vector<fs::path> roots;
  if (opts.paths.empty()) {
    for (const char* d : kDefaultDirs) {
      if (fs::is_directory(root / d)) roots.push_back(root / d);
    }
  } else {
    for (const std::string& p : opts.paths) {
      fs::path fp = fs::path(p).is_absolute() ? fs::path(p) : root / p;
      if (!fs::exists(fp)) {
        err << "hwlint: no such file or directory: " << p << "\n";
        return 2;
      }
      roots.push_back(std::move(fp));
    }
  }

  std::vector<fs::path> files;
  for (const fs::path& r : roots) {
    if (fs::is_regular_file(r)) {
      files.push_back(r);
      continue;
    }
    for (auto it = fs::recursive_directory_iterator(r, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && lintable_extension(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // The scan list, sorted by rel path — slot index is identity from
  // here on, so parallel phases can write results lock-free.
  struct Entry {
    fs::path abs;
    std::string rel;
    LexResult lexed;
    bool read_ok = true;
    std::vector<Violation> violations;
    std::size_t suppressed = 0;
  };
  std::vector<Entry> entries;
  entries.reserve(files.size());
  for (const fs::path& f : files) {
    std::string rel = to_rel(f, root);
    if (allow.excluded(rel)) continue;
    entries.push_back(Entry{f, std::move(rel), {}, true, {}, 0});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.rel < b.rel; });

  const unsigned jobs = worker_count(opts.jobs, entries.size());

  // Phase 1: read + lex, in parallel.  Each file is lexed exactly once;
  // the LexResult is shared by the index build, the per-file rules and
  // the include-graph pass.
  parallel_for(entries.size(), jobs, [&](std::size_t i) {
    std::string content;
    if (!read_file(entries[i].abs, content)) {
      entries[i].read_ok = false;
      return;
    }
    entries[i].lexed = lex(content);
  });
  for (const Entry& e : entries) {
    if (!e.read_ok) {
      err << "hwlint: cannot read " << e.rel << "\n";
      return 2;
    }
  }

  // Phase 2: tree-wide index, sequential in sorted order (evidence
  // strings record the first declaration in path order).
  TreeIndex index;
  for (const Entry& e : entries) {
    index_file(e.rel, e.lexed, index);
  }

  // Phase 3: per-file rules, in parallel; results land in per-slot
  // storage and are merged in slot (= sorted path) order below.
  parallel_for(entries.size(), jobs, [&](std::size_t i) {
    entries[i].violations =
        check_file(entries[i].rel, entries[i].lexed, index,
                   &entries[i].suppressed);
  });

  // Whole-program include-graph pass.
  std::map<std::string, const LexResult*> graph_files;
  for (const Entry& e : entries) graph_files.emplace(e.rel, &e.lexed);
  std::size_t graph_suppressed = 0;
  std::vector<Violation> graph_violations =
      check_include_graph(graph_files, &graph_suppressed);

  report.files_scanned = entries.size();
  report.suppressed = graph_suppressed;
  auto admit = [&](Violation& v) {
    if (allow.allowed(v.file, v.rule)) {
      ++report.allowlisted;
    } else {
      report.violations.push_back(std::move(v));
    }
  };
  for (Entry& e : entries) {
    report.suppressed += e.suppressed;
    for (Violation& v : e.violations) admit(v);
  }
  for (Violation& v : graph_violations) admit(v);

  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.evidence) <
                     std::tie(b.file, b.line, b.rule, b.evidence);
            });
  return report.violations.empty() ? 0 : 1;
}

void print_text(const Report& report, std::ostream& out) {
  for (const Violation& v : report.violations) {
    out << v.file << ":" << v.line << ": " << v.rule << ": " << v.message;
    if (!v.evidence.empty()) out << " [" << v.evidence << "]";
    out << "\n";
  }
  out << "hwlint: " << report.files_scanned << " files, "
      << report.violations.size() << " violation"
      << (report.violations.size() == 1 ? "" : "s") << " ("
      << report.suppressed << " suppressed inline, " << report.allowlisted
      << " allowlisted)\n";
}

void print_json(const Report& report, const Options& opts, std::ostream& out) {
  out << "{\n  \"schema\": \"hwatch.hwlint_report/v2\",\n  \"root\": \"";
  json_escape(out, opts.root.generic_string());
  out << "\",\n  \"files_scanned\": " << report.files_scanned
      << ",\n  \"suppressed\": " << report.suppressed
      << ",\n  \"allowlisted\": " << report.allowlisted
      << ",\n  \"rules\": [";
  const std::vector<std::string>& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"";
    json_escape(out, rules[i]);
    out << "\"";
  }
  out << "],\n  \"passes\": [";
  const std::vector<std::string>& passes = all_passes();
  for (std::size_t i = 0; i < passes.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"";
    json_escape(out, passes[i]);
    out << "\"";
  }
  out << "],\n  \"violations\": [";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Violation& v = report.violations[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"";
    json_escape(out, v.file);
    out << "\", \"line\": " << v.line << ", \"rule\": \"";
    json_escape(out, v.rule);
    out << "\", \"pass\": \"";
    json_escape(out, v.pass);
    out << "\", \"message\": \"";
    json_escape(out, v.message);
    out << "\", \"evidence\": \"";
    json_escape(out, v.evidence);
    out << "\"}";
  }
  out << (report.violations.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace hwlint
