// hwlint — project-specific static analysis for the HWatch simulator.
//
// The engine's credibility rests on two machine-checkable properties:
// runs are bit-reproducible (all nondeterminism flows through
// sim::SimContext) and the packet hot path never touches the global
// allocator.  Nothing in the compiler enforces either, so this tool
// does: a lightweight C++ tokenizer (comments, strings and preprocessor
// lines stripped; identifiers joined across `::`) walks src/, bench/,
// tests/ and tools/ and applies the rules below.  It is deliberately
// dependency-free — plain C++20 and <filesystem> — so the lint gate
// costs nothing to build anywhere the simulator builds.
//
// Rules (ids are what `// hwlint: allow(<rule>)` and the allowlist use):
//
//   nondeterminism     std::random_device, rand()/srand(), time()/clock(),
//                      std::chrono::{system,steady,high_resolution}_clock,
//                      gettimeofday/clock_gettime/getrandom anywhere in
//                      the tree.  Wall-clock reads are only legitimate in
//                      sim/random (the seeded entropy root), the manifest
//                      `environment` section, and bench wall timing — all
//                      covered by the checked-in allowlist.
//
//   hot-path-container std::function / std::deque / std::list in the
//                      hot-path dirs (src/sim, src/net, src/tcp,
//                      src/hwatch).  These either allocate per element
//                      (deque, list) or force copyability and heap spills
//                      (std::function); the repo provides UniqueFunction
//                      and PacketRing instead.
//
//   hot-path-alloc     raw `new` / `delete` (placement new and
//                      `operator new` declarations are recognised and
//                      permitted) and malloc/calloc/realloc/free in the
//                      hot-path dirs.  Allocation goes through the
//                      SimContext pools; the pool implementation itself
//                      is allowlisted.
//
//   unordered-iter     iteration (range-for, .begin()/.cbegin()/...)
//                      over a name declared anywhere in the tree as
//                      std::unordered_map / std::unordered_set.  Hash
//                      order is implementation-defined, so iterating one
//                      into a manifest, flow-record dump or stats table
//                      silently breaks byte-identical output.  Point
//                      lookups (find/insert/erase) stay fine.  Applies
//                      to src/ and tools/.
//
//   cross-shard-state  std:: threading / shared-state primitives
//                      (std::thread, std::mutex, std::atomic,
//                      std::barrier, std::condition_variable, futures,
//                      semaphores, ...) anywhere in src/.  Shards own
//                      disjoint SimContexts and may only exchange state
//                      through net::CrossShardChannel under the
//                      sim::ShardGroup epoch barrier; any other shared
//                      state silently breaks the byte-identical-
//                      across-thread-counts invariant.  The sanctioned
//                      implementations (shard_group, shard_channel, the
//                      sweep thread pool, the self-profiler counter)
//                      are covered by the checked-in allowlist.
//
//   mutable-global     mutable namespace-scope state (static,
//                      thread_local, extern or anonymous-namespace
//                      variables that are not const/constexpr) in src/
//                      outside src/sim — shared state across SimContext
//                      instances breaks the zero-shared-state design.
//                      The sim internals (log sinks, spill arenas) are
//                      exempt by path.
//
// Suppression: `// hwlint: allow(rule)` (or `allow(rule1, rule2)`,
// or `allow(*)`) on the offending line, or alone on the line above.
// A checked-in allowlist file (default <root>/tools/hwlint/allowlist.txt)
// holds `allow <rule> <glob>` and `exclude <glob>` lines.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hwlint {

// ---------------------------------------------------------------- lexer

struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;
};

/// An inline `hwlint: allow(...)` comment.  `rules` empty means
/// `allow(*)`.  When the comment is the only thing on its line it also
/// covers the following line.
struct Suppression {
  int line = 0;
  bool whole_line = false;
  std::vector<std::string> rules;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  /// Lines carrying a `hwlint:` marker that did not parse as
  /// `allow(rule[, rule...])` — reported as violations of rule
  /// "bad-suppression" so typos cannot silently disable the gate.
  std::vector<int> malformed_suppressions;
};

/// Tokenizes one translation unit: strips comments (collecting hwlint
/// markers), string/char literals (raw strings included) and
/// preprocessor directives; joins nothing — `::` is a single punct
/// token so rule code can reassemble qualified names.
LexResult lex(std::string_view source);

// ---------------------------------------------------------------- rules

struct Violation {
  std::string file;  // root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

inline constexpr std::string_view kRuleNondeterminism = "nondeterminism";
inline constexpr std::string_view kRuleHotPathContainer = "hot-path-container";
inline constexpr std::string_view kRuleHotPathAlloc = "hot-path-alloc";
inline constexpr std::string_view kRuleUnorderedIter = "unordered-iter";
inline constexpr std::string_view kRuleCrossShardState = "cross-shard-state";
inline constexpr std::string_view kRuleMutableGlobal = "mutable-global";
inline constexpr std::string_view kRuleBadSuppression = "bad-suppression";

/// All rule ids, for `--help` and the tests.
const std::vector<std::string>& all_rules();

/// Scans a token stream for names declared as unordered containers
/// (members, locals, parameters).  Collected across every scanned file
/// before rule checks run, so a member declared in a header is caught
/// when iterated in its .cpp.
std::set<std::string> collect_unordered_names(const std::vector<Token>& toks);

/// Runs every rule over one file.  `rel_path` (forward slashes, relative
/// to the scan root) decides which rules apply; `unordered_names` is the
/// tree-wide set from collect_unordered_names.  Inline suppressions are
/// applied here; allowlist filtering happens in the driver.
std::vector<Violation> check_source(
    const std::string& rel_path, std::string_view source,
    const std::set<std::string>& unordered_names,
    std::size_t* suppressed_count = nullptr);

// --------------------------------------------------------------- driver

struct AllowEntry {
  std::string rule;  // "*" matches every rule
  std::string glob;  // `*` matches any run of characters, `?` one
};

struct Allowlist {
  std::vector<AllowEntry> allows;
  std::vector<std::string> excludes;  // globs; matching files are skipped

  bool excluded(const std::string& rel_path) const;
  bool allowed(const std::string& rel_path, const std::string& rule) const;
};

/// `*` crosses directory separators; a pattern ending in `/` matches any
/// path under that prefix.
bool glob_match(std::string_view pattern, std::string_view path);

/// Parses `allow <rule> <glob>` / `exclude <glob>` lines (# comments).
/// Returns false (with a message in `err`) on malformed input.
bool parse_allowlist(std::string_view text, Allowlist& out, std::string& err);

struct Options {
  std::filesystem::path root = ".";
  std::vector<std::string> paths;  // explicit files/dirs; empty => default dirs
  std::filesystem::path allowlist;  // empty => <root>/tools/hwlint/allowlist.txt
  bool json = false;
};

struct Report {
  std::vector<Violation> violations;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;   // silenced by inline comments
  std::size_t allowlisted = 0;  // silenced by the allowlist file
};

/// Walks the tree, runs the rules, fills `report`.  Returns 0 when the
/// tree is clean, 1 when violations remain, 2 on usage/IO errors.
int run_lint(const Options& opts, Report& report, std::ostream& err);

/// Renders `file:line: rule: message` lines (stable order).
void print_text(const Report& report, std::ostream& out);

/// Renders the machine-readable report (schema hwatch.hwlint_report/v1).
void print_json(const Report& report, const Options& opts, std::ostream& out);

}  // namespace hwlint
