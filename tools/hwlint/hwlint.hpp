// hwlint — project-specific static analysis for the HWatch simulator.
//
// The engine's credibility rests on two machine-checkable properties:
// runs are bit-reproducible (all nondeterminism flows through
// sim::SimContext) and the packet hot path never touches the global
// allocator.  Nothing in the compiler enforces either, so this tool
// does: a lightweight C++ tokenizer (comments, strings and preprocessor
// lines stripped; identifiers joined across `::`) walks src/, bench/,
// tests/ and tools/ and applies the rules below.  It is deliberately
// dependency-free — plain C++20 and <filesystem> — so the lint gate
// costs nothing to build anywhere the simulator builds.
//
// v2 grew the per-file tokenizer into a whole-program analyzer: a
// preprocessor-lite include resolver feeds an include-graph layering
// pass, and annotations from src/sim/annotations.hpp
// (HWATCH_SHARD_CONFINED / HWATCH_SHARD_SHARED /
// HWATCH_DETERMINISTIC_PLANE) feed a shard-confinement pass.  Files are
// lexed once, in parallel, and every pass shares the memoized token
// streams; reports stay deterministic (sorted by path) regardless of
// thread count.
//
// Rules (ids are what `// hwlint: allow(<rule>)` and the allowlist use),
// grouped by pass:
//
// pass "token" — per-file token scans:
//
//   nondeterminism     std::random_device, rand()/srand(), time()/clock(),
//                      std::chrono::{system,steady,high_resolution}_clock,
//                      gettimeofday/clock_gettime/getrandom anywhere in
//                      the tree.  Wall-clock reads are only legitimate in
//                      sim/random (the seeded entropy root), the manifest
//                      `environment` section, and bench wall timing — all
//                      covered by the checked-in allowlist.
//
//   hot-path-container std::function / std::deque / std::list / std::map
//                      / std::multimap in the hot-path dirs (src/sim,
//                      src/net, src/tcp, src/hwatch).  These either
//                      allocate per element or force copyability and
//                      heap spills; the repo provides UniqueFunction and
//                      PacketRing instead.
//
//   hot-path-alloc     raw `new` / `delete` (placement new and
//                      `operator new` declarations are recognised and
//                      permitted) and malloc/calloc/realloc/free in the
//                      hot-path dirs.  Allocation goes through the
//                      SimContext pools; the pool implementation itself
//                      is allowlisted.
//
//   unordered-iter     iteration (range-for, .begin()/.cbegin()/...)
//                      over a name declared anywhere in the tree as
//                      std::unordered_map / std::unordered_set.  Hash
//                      order is implementation-defined, so iterating one
//                      into a manifest, flow-record dump or stats table
//                      silently breaks byte-identical output.  Point
//                      lookups (find/insert/erase) stay fine.  Applies
//                      to src/ and tools/.
//
//   cross-shard-state  std:: threading / shared-state primitives
//                      (std::thread, std::mutex, std::atomic,
//                      std::barrier, std::condition_variable, futures,
//                      semaphores, ...) anywhere in src/.  Shards own
//                      disjoint SimContexts and may only exchange state
//                      through net::CrossShardChannel under the
//                      sim::ShardGroup epoch barrier; any other shared
//                      state silently breaks the byte-identical-
//                      across-thread-counts invariant.  The sanctioned
//                      implementations (shard_group, shard_channel, the
//                      sweep thread pool, the self-profiler counter)
//                      are covered by the checked-in allowlist.
//
//   mutable-global     mutable namespace-scope state (static,
//                      thread_local, extern or anonymous-namespace
//                      variables that are not const/constexpr) in src/
//                      outside src/sim — shared state across SimContext
//                      instances breaks the zero-shared-state design.
//                      The sim internals are covered by the
//                      shard-confinement rule instead, which demands an
//                      explicit HWATCH_SHARD_SHARED marker.
//
//   bad-suppression    unparsable `hwlint:` markers, and `allow(...)`
//                      lists naming a rule this binary does not know
//                      (`allow(layerng)` must fail loudly, not silently
//                      no-op), so typos cannot disable the gate.
//
// pass "include-graph" — whole-program, over resolved `#include "..."`
// edges between files under src/:
//
//   layering           the include DAG must respect the layer order
//                        sim → net → tcp/hwatch → topo/stats/workload → api
//                      (same-layer includes are fine; an include that
//                      points at a *higher* layer is flagged), and must
//                      be acyclic — cycle reports print the full
//                      include path.  Quoted includes resolve relative
//                      to the including file first, then against the
//                      src/ include root; includes that resolve to no
//                      scanned file (system headers, generated code)
//                      are tolerated.
//
// pass "shard-confinement" — annotation-driven (src/sim/annotations.hpp):
//
//   shard-confinement  (1) a type declared HWATCH_SHARD_CONFINED
//                      referenced from a translation unit that uses
//                      std:: threading primitives (the ShardInbox /
//                      ShardChannel-external threading contexts); (2) a
//                      mutable namespace-scope variable in src/sim not
//                      marked HWATCH_SHARD_SHARED; (3) a function
//                      annotated HWATCH_DETERMINISTIC_PLANE whose
//                      definition calls wall-clock or RNG-root APIs
//                      (including `.seed(...)` reseeding) — enforced
//                      even inside nondeterminism-allowlisted TUs.
//
// pass "fp-determinism" — floating-point portability, src/ only:
//
//   fp-determinism     (1) float/double accumulation (`+=`, `-=`, ...,
//                      std::accumulate) inside iteration over a
//                      container declared unordered — summation order
//                      is implementation-defined; (2) direct `==`/`!=`
//                      where either operand is a floating literal or a
//                      name declared float/double *in the same file*
//                      (per-file on purpose: a tree-wide name table
//                      turns every `c == '"'` into noise the moment
//                      any file declares `double c`) — representation
//                      noise breaks cross-platform byte-identity; (3)
//                      non-portable libm calls (pow/exp/log/tgamma/...;
//                      sqrt and fma are exempt — IEEE 754 requires
//                      correct rounding for them) outside allowlisted
//                      TUs.
//
// Suppression: `// hwlint: allow(rule)` (or `allow(rule1, rule2)`,
// or `allow(*)`) on the offending line, or alone on the line above.
// A checked-in allowlist file (default <root>/tools/hwlint/allowlist.txt)
// holds `allow <rule> <glob>` and `exclude <glob>` lines; rule names in
// both places are validated against the rule table.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hwlint {

// ---------------------------------------------------------------- lexer

struct Token {
  enum class Kind { kIdentifier, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;
};

/// An inline `hwlint: allow(...)` comment.  `rules` empty means
/// `allow(*)`.  When the comment is the only thing on its line it also
/// covers the following line.
struct Suppression {
  int line = 0;
  bool whole_line = false;
  std::vector<std::string> rules;
};

/// One `#include` directive, collected for the include-graph pass.
/// `angled` distinguishes `<...>` (system — never part of the project
/// graph) from `"..."`.
struct IncludeDirective {
  int line = 0;
  bool angled = false;
  std::string path;  // verbatim spelling between the delimiters
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<IncludeDirective> includes;
  /// Lines carrying a `hwlint:` marker that did not parse as
  /// `allow(rule[, rule...])` — reported as violations of rule
  /// "bad-suppression" so typos cannot silently disable the gate.
  std::vector<int> malformed_suppressions;
};

/// Tokenizes one translation unit: strips comments (collecting hwlint
/// markers), string/char literals (raw strings included) and
/// preprocessor directives (collecting `#include` targets); joins
/// nothing — `::` is a single punct token so rule code can reassemble
/// qualified names.  `==` `!=` `+=` `-=` `*=` `/=` are single tokens
/// (the fp-determinism pass keys on them); all other multi-character
/// operators except `::` and `->` stay split.
LexResult lex(std::string_view source);

// ---------------------------------------------------------------- rules

struct Violation {
  std::string file;  // root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string pass;      // "token" | "include-graph" | "shard-confinement"
                         // | "fp-determinism"
  std::string message;
  std::string evidence;  // include path / annotation site; "" when n/a
};

inline constexpr std::string_view kRuleNondeterminism = "nondeterminism";
inline constexpr std::string_view kRuleHotPathContainer = "hot-path-container";
inline constexpr std::string_view kRuleHotPathAlloc = "hot-path-alloc";
inline constexpr std::string_view kRuleUnorderedIter = "unordered-iter";
inline constexpr std::string_view kRuleCrossShardState = "cross-shard-state";
inline constexpr std::string_view kRuleMutableGlobal = "mutable-global";
inline constexpr std::string_view kRuleBadSuppression = "bad-suppression";
inline constexpr std::string_view kRuleLayering = "layering";
inline constexpr std::string_view kRuleShardConfinement = "shard-confinement";
inline constexpr std::string_view kRuleFpDeterminism = "fp-determinism";

inline constexpr std::string_view kPassToken = "token";
inline constexpr std::string_view kPassIncludeGraph = "include-graph";
inline constexpr std::string_view kPassShardConfinement = "shard-confinement";
inline constexpr std::string_view kPassFpDeterminism = "fp-determinism";

/// All rule ids, for `--help`, suppression validation and the tests.
const std::vector<std::string>& all_rules();
/// All pass names, in report order.
const std::vector<std::string>& all_passes();
/// True when `rule` names a known rule (suppression validation).
bool known_rule(std::string_view rule);

/// Cross-file facts collected over every scanned file before the rule
/// checks run, so a declaration in a header is honoured when its .cpp
/// is checked.  Values in the evidence maps are "file:line" of the
/// first declaration in path order (deterministic).
struct TreeIndex {
  /// Names declared as std::unordered_{map,set,multimap,multiset}.
  std::set<std::string> unordered_names;
  /// Class names annotated HWATCH_SHARD_CONFINED -> declaration site.
  std::map<std::string, std::string> confined_types;
  /// Class names annotated HWATCH_SHARD_SHARED -> declaration site.
  std::map<std::string, std::string> shared_types;
  /// Function names annotated HWATCH_DETERMINISTIC_PLANE -> site.
  std::map<std::string, std::string> deterministic_fns;
};

/// Folds one lexed file into the tree-wide index.  Call in sorted path
/// order so evidence strings are deterministic.
void index_file(const std::string& rel_path, const LexResult& lexed,
                TreeIndex& index);

/// Runs every per-file rule over one already-lexed file.  `rel_path`
/// (forward slashes, relative to the scan root) decides which rules
/// apply; `index` is the tree-wide fact table.  Inline suppressions are
/// applied here; allowlist filtering happens in the driver.
std::vector<Violation> check_file(const std::string& rel_path,
                                  const LexResult& lexed,
                                  const TreeIndex& index,
                                  std::size_t* suppressed_count = nullptr);

/// Convenience for tests: lex + index-free check of a single source.
/// Builds a one-file TreeIndex from `source` itself.
std::vector<Violation> check_source(
    const std::string& rel_path, std::string_view source,
    std::size_t* suppressed_count = nullptr);

// ------------------------------------------------- include-graph pass

/// Layer rank of a path under src/ (sim=0, net=1, tcp=hwatch=2,
/// topo=stats=workload=3, api=4); -1 for anything else (unknown dirs
/// and files outside src/ take no part in layering).
int layer_rank(std::string_view rel_path);

/// Resolves one quoted include spelled `target` inside `includer_rel`
/// against the set of scanned files: relative to the including file's
/// directory first, then the src/ include root, then verbatim.  Returns
/// "" when nothing matches (missing-file tolerance).
std::string resolve_include(const std::string& includer_rel,
                            const std::string& target,
                            const std::set<std::string>& known_files);

/// The include-graph pass: builds the resolved `#include` DAG over the
/// files under src/ and enforces the layer order plus acyclicity.
/// Upward includes are attributed to the including file at the
/// `#include` line (inline-suppressible there); cycles are attributed
/// to the lexicographically smallest member and carry the full path in
/// the message and evidence.  `files` maps rel path -> lexed content.
std::vector<Violation> check_include_graph(
    const std::map<std::string, const LexResult*>& files,
    std::size_t* suppressed_count = nullptr);

// --------------------------------------------------------------- driver

struct AllowEntry {
  std::string rule;  // "*" matches every rule
  std::string glob;  // `*` matches any run of characters, `?` one
};

struct Allowlist {
  std::vector<AllowEntry> allows;
  std::vector<std::string> excludes;  // globs; matching files are skipped

  bool excluded(const std::string& rel_path) const;
  bool allowed(const std::string& rel_path, const std::string& rule) const;
};

/// `*` crosses directory separators; a pattern ending in `/` matches any
/// path under that prefix (the prefix itself may contain wildcards).
bool glob_match(std::string_view pattern, std::string_view path);

/// Parses `allow <rule> <glob>` / `exclude <glob>` lines (# comments).
/// Rule names must be known (or `*`).  Returns false (with a message in
/// `err`) on malformed input.
bool parse_allowlist(std::string_view text, Allowlist& out, std::string& err);

struct Options {
  std::filesystem::path root = ".";
  std::vector<std::string> paths;  // explicit files/dirs; empty => default dirs
  std::filesystem::path allowlist;  // empty => <root>/tools/hwlint/allowlist.txt
  bool json = false;
  /// Worker threads for the lex and rule passes; 0 = one per hardware
  /// thread (clamped).  The report is byte-identical for every value.
  unsigned jobs = 0;
};

struct Report {
  std::vector<Violation> violations;  // sorted by (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;   // silenced by inline comments
  std::size_t allowlisted = 0;  // silenced by the allowlist file
};

/// Walks the tree, runs the rules, fills `report`.  Returns 0 when the
/// tree is clean, 1 when violations remain, 2 on usage/IO errors.
int run_lint(const Options& opts, Report& report, std::ostream& err);

/// Renders `file:line: rule: message` lines (stable order).
void print_text(const Report& report, std::ostream& out);

/// Renders the machine-readable report (schema hwatch.hwlint_report/v2:
/// violations carry pass and evidence; top level lists rules + passes).
void print_json(const Report& report, const Options& opts, std::ostream& out);

}  // namespace hwlint
