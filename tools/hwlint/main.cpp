// hwlint CLI.  Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <iostream>
#include <string>
#include <string_view>

#include "hwlint/hwlint.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: hwlint [--root DIR] [--allowlist FILE] [--json]\n"
        "              [--jobs N] [paths...]\n"
        "\n"
        "Project-specific static analysis for the HWatch simulator.\n"
        "Scans src/ bench/ tests/ tools/ examples/ under --root (default:\n"
        "the current directory) unless explicit paths are given.  The\n"
        "allowlist defaults to <root>/tools/hwlint/allowlist.txt when\n"
        "present.  --jobs 0 (the default) uses one worker per hardware\n"
        "thread; the report is byte-identical for every job count.\n"
        "\n"
        "Rules:\n";
  for (const std::string& r : hwlint::all_rules()) {
    os << "  " << r << "\n";
  }
  os << "\nSuppress inline with `// hwlint: allow(rule)` on the line (or\n"
        "alone on the line above); see tools/hwlint/hwlint.hpp for the\n"
        "full rule rationale.\n";
}

}  // namespace

int main(int argc, char** argv) {
  hwlint::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--root") {
      if (++i >= argc) {
        std::cerr << "hwlint: --root needs a directory\n";
        return 2;
      }
      opts.root = argv[i];
    } else if (arg == "--allowlist") {
      if (++i >= argc) {
        std::cerr << "hwlint: --allowlist needs a file\n";
        return 2;
      }
      opts.allowlist = argv[i];
    } else if (arg == "--jobs" || arg == "-j") {
      if (++i >= argc) {
        std::cerr << "hwlint: --jobs needs a count\n";
        return 2;
      }
      try {
        opts.jobs = static_cast<unsigned>(std::stoul(argv[i]));
      } catch (...) {
        std::cerr << "hwlint: --jobs needs a number, got " << argv[i] << "\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hwlint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      opts.paths.emplace_back(arg);
    }
  }

  hwlint::Report report;
  const int rc = hwlint::run_lint(opts, report, std::cerr);
  if (rc == 2) return 2;
  if (opts.json) {
    hwlint::print_json(report, opts, std::cout);
  } else {
    hwlint::print_text(report, std::cout);
  }
  return rc;
}
