// Include-graph layering pass.
//
// Builds the resolved `#include "..."` DAG over the scanned files under
// src/ and proves two architectural facts the compiler never will:
//
//   1. The layer order  sim → net → tcp/hwatch → topo/stats/workload →
//      api  is respected: a file may include its own layer or a lower
//      one, never a higher one.  (sim is the base: everything may
//      depend on it, it depends on nothing project-local.)
//
//   2. The graph is acyclic.  Header cycles "work" under #pragma once
//      by silently giving one of the two files a truncated view, which
//      is exactly the kind of latent breakage that surfaces months
//      later; cycle reports therefore print the full include path.
//
// Resolution is preprocessor-lite: a quoted include is tried relative
// to the including file's directory, then against the src/ include
// root, then verbatim — the same order the build's `-Isrc` setup makes
// the compiler use.  Angled includes and includes that resolve to no
// scanned file (system headers) take no part in the graph.

#include "hwlint/hwlint.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace hwlint {

namespace {

/// Top-level directory under src/ ("sim" for "src/sim/context.hpp"),
/// or "" when the path is not of that shape.
std::string layer_dir(std::string_view rel) {
  constexpr std::string_view kPrefix = "src/";
  if (rel.substr(0, kPrefix.size()) != kPrefix) return "";
  const std::string_view rest = rel.substr(kPrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

/// Collapses "." and ".." segments; keeps forward slashes.  ".."
/// popping past the root just drops the segment (good enough for
/// lint-time resolution of project-relative paths).
std::string normalize(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i <= path.size()) {
    const std::size_t slash = std::min(path.find('/', i), path.size());
    const std::string_view seg = path.substr(i, slash - i);
    if (seg == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!seg.empty() && seg != ".") {
      parts.emplace_back(seg);
    }
    i = slash + 1;
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

bool suppressed_at(const LexResult& lexed, int line, std::string_view rule) {
  for (const Suppression& s : lexed.suppressions) {
    const bool line_match =
        s.line == line || (s.whole_line && s.line + 1 == line);
    if (!line_match) continue;
    if (s.rules.empty()) return true;  // allow(*)
    for (const std::string& r : s.rules) {
      if (r == rule) return true;
    }
  }
  return false;
}

std::string join_path(const std::vector<std::string>& cycle) {
  std::string out;
  for (const std::string& f : cycle) {
    if (!out.empty()) out += " -> ";
    out += f;
  }
  out += " -> " + cycle.front();
  return out;
}

struct Graph {
  // node -> (target, include line), edges in include order.
  std::map<std::string, std::vector<std::pair<std::string, int>>> adj;
};

/// DFS cycle finder.  Colors: 0 white, 1 on stack, 2 done.  Every back
/// edge yields the cycle currently on the stack; cycles are
/// canonicalized (rotated to their lexicographically smallest member)
/// and deduped so a triangle is reported once, not three times.
void find_cycles(const Graph& g,
                 std::map<std::string, std::vector<std::string>>& cycles) {
  std::map<std::string, int> color;
  std::vector<std::string> stack;

  struct Walker {
    const Graph& g;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::map<std::string, std::vector<std::string>>& cycles;

    void visit(const std::string& v) {
      color[v] = 1;
      stack.push_back(v);
      const auto it = g.adj.find(v);
      if (it != g.adj.end()) {
        for (const auto& [w, line] : it->second) {
          const int c = color.count(w) != 0 ? color[w] : 0;
          if (c == 1) {
            // Back edge: the cycle is stack[pos(w)..end].
            const auto at = std::find(stack.begin(), stack.end(), w);
            std::vector<std::string> cyc(at, stack.end());
            const auto small = std::min_element(cyc.begin(), cyc.end());
            std::rotate(cyc.begin(), small, cyc.end());
            cycles.emplace(join_path(cyc), cyc);
          } else if (c == 0) {
            visit(w);
          }
        }
      }
      stack.pop_back();
      color[v] = 2;
    }
  };

  Walker walker{g, color, stack, cycles};
  for (const auto& [v, edges] : g.adj) {
    if (color.count(v) == 0) walker.visit(v);
  }
}

}  // namespace

int layer_rank(std::string_view rel_path) {
  const std::string dir = layer_dir(rel_path);
  if (dir == "sim") return 0;
  if (dir == "net") return 1;
  if (dir == "tcp" || dir == "hwatch") return 2;
  if (dir == "topo" || dir == "stats" || dir == "workload") return 3;
  if (dir == "api") return 4;
  return -1;
}

std::string resolve_include(const std::string& includer_rel,
                            const std::string& target,
                            const std::set<std::string>& known_files) {
  // 1. Relative to the including file's directory.
  const std::size_t slash = includer_rel.rfind('/');
  if (slash != std::string::npos) {
    const std::string rel =
        normalize(includer_rel.substr(0, slash) + "/" + target);
    if (known_files.count(rel) != 0) return rel;
  }
  // 2. Against the src/ include root (the build passes -Isrc).
  const std::string rooted = normalize("src/" + target);
  if (known_files.count(rooted) != 0) return rooted;
  // 3. Verbatim from the repo root.
  const std::string verbatim = normalize(target);
  if (known_files.count(verbatim) != 0) return verbatim;
  return "";
}

std::vector<Violation> check_include_graph(
    const std::map<std::string, const LexResult*>& files,
    std::size_t* suppressed_count) {
  std::set<std::string> known;
  for (const auto& [rel, lexed] : files) known.insert(rel);

  std::vector<Violation> out;
  auto note = [&](const LexResult& lexed, const std::string& rel, int line,
                  std::string message, std::string evidence) {
    if (suppressed_at(lexed, line, kRuleLayering)) {
      if (suppressed_count != nullptr) ++*suppressed_count;
      return;
    }
    out.push_back(Violation{rel, line, std::string(kRuleLayering),
                            std::string(kPassIncludeGraph),
                            std::move(message), std::move(evidence)});
  };

  // Resolve edges; flag upward includes as we go.  Only edges whose
  // both endpoints live in a ranked src/ layer participate.
  Graph graph;
  for (const auto& [rel, lexed] : files) {
    const int from_rank = layer_rank(rel);
    if (from_rank < 0) continue;
    for (const IncludeDirective& inc : lexed->includes) {
      if (inc.angled) continue;
      const std::string target = resolve_include(rel, inc.path, known);
      if (target.empty()) continue;  // missing-file tolerance
      const int to_rank = layer_rank(target);
      if (to_rank < 0) continue;
      graph.adj[rel].emplace_back(target, inc.line);
      if (to_rank > from_rank) {
        note(*lexed, rel, inc.line,
             "upward include: layer `" + layer_dir(rel) + "` (rank " +
                 std::to_string(from_rank) + ") includes `" +
                 layer_dir(target) + "` (rank " + std::to_string(to_rank) +
                 "); the layer order is sim -> net -> tcp/hwatch -> "
                 "topo/stats/workload -> api and dependencies may only "
                 "point down",
             rel + " -> " + target);
      }
    }
  }

  // Cycles (self-includes come out as cycles of length 1).
  std::map<std::string, std::vector<std::string>> cycles;
  find_cycles(graph, cycles);
  for (const auto& [key, cyc] : cycles) {
    // Attribute to the lexicographically smallest member (cyc.front()
    // after canonical rotation), at the line where it includes the next
    // file on the cycle.
    const std::string& owner = cyc.front();
    const std::string& next = cyc.size() > 1 ? cyc[1] : cyc.front();
    int line = 1;
    const auto it = graph.adj.find(owner);
    if (it != graph.adj.end()) {
      for (const auto& [target, at] : it->second) {
        if (target == next) {
          line = at;
          break;
        }
      }
    }
    const auto lexed = files.find(owner);
    note(*lexed->second, owner, line,
         "include cycle: " + key +
             "; under #pragma once one member silently sees a truncated "
             "view of the other — break the cycle with a forward "
             "declaration or by splitting the header",
         key);
  }

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.evidence) <
           std::tie(b.file, b.line, b.evidence);
  });
  return out;
}

}  // namespace hwlint
