// Rule implementations.  Each rule walks the token stream produced by
// lex(); see hwlint.hpp for what every rule protects and why.

#include "hwlint/hwlint.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <tuple>
#include <unordered_set>

namespace hwlint {

namespace {

using Toks = std::vector<Token>;

bool is_ident(const Token& t) { return t.kind == Token::Kind::kIdentifier; }
bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

/// Reassembles the qualified name ending at identifier `i`
/// ("std::chrono::steady_clock" for the token `steady_clock`).
std::string qualified_name(const Toks& t, std::size_t i) {
  std::string name = t[i].text;
  std::size_t k = i;
  while (k >= 2 && is_punct(t[k - 1], "::") && is_ident(t[k - 2])) {
    name.insert(0, t[k - 2].text + "::");
    k -= 2;
  }
  return name;
}

const Token* prev_tok(const Toks& t, std::size_t i) {
  return i > 0 ? &t[i - 1] : nullptr;
}
const Token* next_tok(const Toks& t, std::size_t i) {
  return i + 1 < t.size() ? &t[i + 1] : nullptr;
}

/// Keywords that legitimately precede a call expression (so `return
/// time(...)` is a call, while `std::uint64_t time(...)` is a
/// declaration of a same-named project function).
bool is_call_preceder_keyword(const Token& t) {
  static const std::unordered_set<std::string> kSet = {
      "return", "co_return", "co_yield", "co_await", "else", "do"};
  return is_ident(t) && kSet.count(t.text) != 0;
}

/// True when identifier `i` is a call (followed by `(`) of a free or
/// std-qualified function — member calls (`x.time(...)`) don't count.
bool is_free_call(const Toks& t, std::size_t i) {
  const Token* nx = next_tok(t, i);
  if (nx == nullptr || !is_punct(*nx, "(")) return false;
  const Token* pv = prev_tok(t, i);
  if (pv == nullptr) return true;
  if (is_punct(*pv, ".") || is_punct(*pv, "->")) return false;
  if (is_punct(*pv, "::")) {
    // Qualified: only std:: (or global ::) still counts as the banned
    // library function; anything_else::time() is the project's own.
    if (i >= 2 && is_ident(t[i - 2]) && !is_call_preceder_keyword(t[i - 2])) {
      return t[i - 2].text == "std";
    }
    return true;  // leading ::time()
  }
  // `Type time(...)` / `Type* time(...)` is a declaration, not a call.
  if (is_ident(*pv)) return is_call_preceder_keyword(*pv);
  if (is_punct(*pv, ">") || is_punct(*pv, "*") || is_punct(*pv, "&")) {
    return false;
  }
  return true;
}

// --------------------------------------------------------- rule scoping

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool in_hot_path(std::string_view rel) {
  return starts_with(rel, "src/sim/") || starts_with(rel, "src/net/") ||
         starts_with(rel, "src/tcp/") || starts_with(rel, "src/hwatch/");
}

bool unordered_iter_applies(std::string_view rel) {
  return starts_with(rel, "src/") || starts_with(rel, "tools/");
}

bool mutable_global_applies(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/sim/");
}

bool cross_shard_state_applies(std::string_view rel) {
  return starts_with(rel, "src/");
}

// ------------------------------------------------------ nondeterminism

const std::unordered_set<std::string>& banned_qualified() {
  static const std::unordered_set<std::string> kSet = {
      "std::random_device",
      "random_device",
      "std::chrono::system_clock",
      "std::chrono::steady_clock",
      "std::chrono::high_resolution_clock",
      "chrono::system_clock",
      "chrono::steady_clock",
      "chrono::high_resolution_clock",
      "system_clock",
      "steady_clock",
      "high_resolution_clock",
  };
  return kSet;
}

const std::unordered_set<std::string>& banned_calls() {
  static const std::unordered_set<std::string> kSet = {
      "rand",     "srand",         "time",        "clock",
      "gettimeofday", "clock_gettime", "timespec_get", "getrandom",
  };
  return kSet;
}

void check_nondeterminism(const std::string& rel, const Toks& t,
                          std::vector<Violation>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string qn = qualified_name(t, i);
    if (banned_qualified().count(qn) != 0) {
      out.push_back({rel, t[i].line, std::string(kRuleNondeterminism),
                     "wall-clock / entropy source `" + qn +
                         "`; route nondeterminism through sim::SimContext "
                         "(seeded sim::Rng, manifest environment section)"});
      continue;
    }
    if (banned_calls().count(t[i].text) != 0 && is_free_call(t, i)) {
      out.push_back({rel, t[i].line, std::string(kRuleNondeterminism),
                     "call to `" + t[i].text +
                         "()` is nondeterministic; use the SimContext "
                         "clock/Rng instead"});
    }
  }
}

// -------------------------------------------------- hot-path-container

void check_hot_path_container(const std::string& rel, const Toks& t,
                              std::vector<Violation>& out) {
  static const std::unordered_set<std::string> kBanned = {
      "std::function", "std::deque", "std::list", "std::map",
      "std::multimap"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string qn = qualified_name(t, i);
    if (kBanned.count(qn) == 0) continue;
    const char* alt =
        qn == "std::function"
            ? "sim::UniqueFunction (move-only, SBO, no per-event heap)"
        : (qn == "std::map" || qn == "std::multimap")
            ? "a flat slab / wheel / sorted vector (a red-black tree "
              "allocates one node per insert — a std::map calendar "
              "queue would undo the scheduler's zero-alloc fast path)"
            : "net::PacketRing / std::vector (deque and list allocate "
              "per node)";
    out.push_back({rel, t[i].line, std::string(kRuleHotPathContainer),
                   "`" + qn + "` in a hot-path dir; use " + alt});
  }
}

// ------------------------------------------------------ hot-path-alloc

void check_hot_path_alloc(const std::string& rel, const Toks& t,
                          std::vector<Violation>& out) {
  static const std::unordered_set<std::string> kAllocCalls = {
      "malloc", "calloc", "realloc", "free", "aligned_alloc"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const Token* pv = prev_tok(t, i);
    const Token* nx = next_tok(t, i);
    if (t[i].text == "new") {
      // `operator new` declarations and placement new (`new (buf) T`,
      // including `::new`) are the sanctioned forms.
      if (pv != nullptr && pv->text == "operator") continue;
      if (nx != nullptr && is_punct(*nx, "(")) continue;
      out.push_back({rel, t[i].line, std::string(kRuleHotPathAlloc),
                     "raw `new` in a hot-path dir; allocate through the "
                     "SimContext pools or pre-reserve at construction"});
      continue;
    }
    if (t[i].text == "delete") {
      if (pv != nullptr && (pv->text == "operator" || is_punct(*pv, "="))) {
        continue;  // deleted function / operator delete declaration
      }
      out.push_back({rel, t[i].line, std::string(kRuleHotPathAlloc),
                     "raw `delete` in a hot-path dir; hot-path objects are "
                     "pool-recycled or value-owned"});
      continue;
    }
    if (kAllocCalls.count(t[i].text) != 0 && is_free_call(t, i)) {
      out.push_back({rel, t[i].line, std::string(kRuleHotPathAlloc),
                     "`" + t[i].text +
                         "()` in a hot-path dir; the hot path must not "
                         "touch the global allocator"});
    }
  }
}

// ---------------------------------------------------- cross-shard-state

/// Only std::-qualified names are matched: a project type or parameter
/// that happens to be called `mutex` or `thread` is not shared state.
void check_cross_shard_state(const std::string& rel, const Toks& t,
                             std::vector<Violation>& out) {
  static const std::unordered_set<std::string> kBanned = {
      "std::thread",          "std::jthread",
      "std::mutex",           "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",    "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::atomic",          "std::atomic_flag",
      "std::atomic_ref",      "std::atomic_thread_fence",
      "std::barrier",         "std::latch",
      "std::counting_semaphore", "std::binary_semaphore",
      "std::future",          "std::shared_future",
      "std::promise",         "std::packaged_task",
      "std::async",           "std::stop_source",
      "std::stop_token",
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string qn = qualified_name(t, i);
    if (kBanned.count(qn) == 0) continue;
    out.push_back(
        {rel, t[i].line, std::string(kRuleCrossShardState),
         "`" + qn +
             "` shares state across threads; shards own disjoint "
             "SimContexts and communicate only through "
             "net::CrossShardChannel under the sim::ShardGroup barrier "
             "(sanctioned implementations are allowlisted)"});
  }
}

// ------------------------------------------------------- unordered-iter

/// Skips a balanced `<...>` starting at the `<` in position i; returns
/// the index one past the closing `>` (or toks.size() when unbalanced).
std::size_t skip_template_args(const Toks& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(t[i], "<")) ++depth;
    if (is_punct(t[i], ">") && --depth == 0) return i + 1;
    // A `;` at template depth means we misparsed (comparison operator);
    // bail rather than eat the rest of the file.
    if (is_punct(t[i], ";")) return i;
  }
  return i;
}

}  // namespace

std::set<std::string> collect_unordered_names(const Toks& t) {
  static const std::unordered_set<std::string> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i]) || kContainers.count(t[i].text) == 0) continue;
    std::size_t k = i + 1;
    if (k >= t.size() || !is_punct(t[k], "<")) continue;
    k = skip_template_args(t, k);
    // Skip declarator decorations (`&`, `*`, trailing `const`) between
    // the template closer and the declared name; `&&` is two `&` tokens.
    while (k < t.size() &&
           (is_punct(t[k], "&") || is_punct(t[k], "*") ||
            (is_ident(t[k]) && t[k].text == "const"))) {
      ++k;
    }
    if (k >= t.size() || !is_ident(t[k])) continue;
    const std::size_t name_idx = k;
    const Token* after = next_tok(t, name_idx);
    // `name(` is a function returning the container — not a variable.
    if (after != nullptr && is_punct(*after, "(")) continue;
    names.insert(t[name_idx].text);
  }
  return names;
}

namespace {

void check_unordered_iter(const std::string& rel, const Toks& t,
                          const std::set<std::string>& names,
                          std::vector<Violation>& out) {
  if (names.empty()) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for: `for ( decl : expr )` — flag when any identifier in the
    // range expression names an unordered container.
    if (is_ident(t[i]) && t[i].text == "for" && i + 1 < t.size() &&
        is_punct(t[i + 1], "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t k = i + 1; k < t.size(); ++k) {
        if (is_punct(t[k], "(")) ++depth;
        if (is_punct(t[k], ")") && --depth == 0) {
          close = k;
          break;
        }
        if (depth == 1 && colon == 0 && is_punct(t[k], ":")) colon = k;
      }
      if (colon != 0 && close != 0) {
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (is_ident(t[k]) && names.count(t[k].text) != 0) {
            out.push_back(
                {rel, t[k].line, std::string(kRuleUnorderedIter),
                 "range-for over unordered container `" + t[k].text +
                     "`; hash order is implementation-defined — copy to a "
                     "sorted vector or use an ordered container"});
            break;
          }
        }
      }
    }
    // Explicit iterator walk: name.begin() / cbegin / rbegin / crbegin.
    if (is_ident(t[i]) && names.count(t[i].text) != 0 && i + 2 < t.size() &&
        (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
        is_ident(t[i + 2])) {
      // `.end()` alone is NOT flagged: `it != m.end()` after a find()
      // is the sanctioned point-lookup idiom.  Walks start at begin().
      static const std::unordered_set<std::string> kIterFns = {
          "begin", "cbegin", "rbegin", "crbegin"};
      if (kIterFns.count(t[i + 2].text) != 0 && i + 3 < t.size() &&
          is_punct(t[i + 3], "(")) {
        out.push_back({rel, t[i].line, std::string(kRuleUnorderedIter),
                       "iterator walk over unordered container `" + t[i].text +
                           "`; iteration order is implementation-defined"});
      }
    }
  }
}

// ------------------------------------------------------ mutable-global

/// Statement-head classification for scope tracking.
enum class ScopeKind { kNamespace, kClass, kFunction, kOther };

bool head_has(const Toks& head, std::string_view word) {
  for (const Token& t : head) {
    if (t.kind == Token::Kind::kIdentifier && t.text == word) return true;
  }
  return false;
}
bool head_has_punct(const Toks& head, std::string_view p) {
  for (const Token& t : head) {
    if (t.kind == Token::Kind::kPunct && t.text == p) return true;
  }
  return false;
}

/// Decides whether the tokens of one namespace-scope statement declare a
/// mutable variable (as opposed to a function, type, alias, ...).
bool head_is_mutable_var(const Toks& head) {
  if (head.size() < 2) return false;
  static const std::array<std::string_view, 12> kSkipWords = {
      "using",  "typedef", "friend",    "template",  "operator", "class",
      "struct", "union",   "enum",      "const",     "constexpr", "consteval"};
  for (std::string_view w : kSkipWords) {
    if (head_has(head, w)) return false;
  }
  if (!head_has(head, "static") && !head_has(head, "thread_local") &&
      !head_has(head, "extern")) {
    // Plain `int g = 0;` at namespace scope is just as mutable, but only
    // flag it when it really looks like a variable (has an initializer);
    // without one we cannot cheaply tell a declaration from a macro use.
    if (!head_has_punct(head, "=")) return false;
  }
  // Function if the first `(` comes before any `=`.
  std::size_t first_paren = head.size();
  std::size_t first_eq = head.size();
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (first_paren == head.size() && head[i].kind == Token::Kind::kPunct &&
        head[i].text == "(") {
      first_paren = i;
    }
    if (first_eq == head.size() && head[i].kind == Token::Kind::kPunct &&
        head[i].text == "=") {
      first_eq = i;
    }
  }
  if (first_paren < first_eq) return false;
  // Needs at least a type token and a name token.
  int idents = 0;
  for (const Token& t : head) {
    if (t.kind == Token::Kind::kIdentifier) ++idents;
  }
  return idents >= 2;
}

void check_mutable_global(const std::string& rel, const Toks& t,
                          std::vector<Violation>& out) {
  std::vector<ScopeKind> scopes;
  Toks head;
  auto at_namespace_scope = [&] {
    return scopes.empty() || scopes.back() == ScopeKind::kNamespace;
  };
  auto flag = [&](int line) {
    out.push_back({rel, line, std::string(kRuleMutableGlobal),
                   "mutable namespace-scope state; SimContext owns all "
                   "mutable state so parallel scenarios share nothing "
                   "(const/constexpr is fine)"});
  };
  for (const Token& tok : t) {
    if (is_punct(tok, "{")) {
      ScopeKind kind = ScopeKind::kOther;
      if (head_has(head, "namespace")) {
        kind = ScopeKind::kNamespace;
      } else if (head_has_punct(head, "(") || head_has_punct(head, ")")) {
        kind = ScopeKind::kFunction;
      } else if (head_has(head, "class") || head_has(head, "struct") ||
                 head_has(head, "union") || head_has(head, "enum")) {
        kind = ScopeKind::kClass;
      } else if (at_namespace_scope() && head_is_mutable_var(head)) {
        // Brace-initialized namespace-scope variable: `static int x{0};`
        flag(tok.line);
      }
      scopes.push_back(kind);
      head.clear();
      continue;
    }
    if (is_punct(tok, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      head.clear();
      continue;
    }
    if (is_punct(tok, ";")) {
      if (at_namespace_scope() && head_is_mutable_var(head)) {
        flag(head.front().line);
      }
      head.clear();
      continue;
    }
    if (head.size() < 512) head.push_back(tok);
  }
}

// --------------------------------------------------------- suppression

bool suppressed(const std::vector<Suppression>& sups, const Violation& v) {
  for (const Suppression& s : sups) {
    const bool line_match =
        s.line == v.line || (s.whole_line && s.line + 1 == v.line);
    if (!line_match) continue;
    if (s.rules.empty()) return true;  // allow(*)
    for (const std::string& r : s.rules) {
      if (r == v.rule) return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      std::string(kRuleNondeterminism),    std::string(kRuleHotPathContainer),
      std::string(kRuleHotPathAlloc),      std::string(kRuleUnorderedIter),
      std::string(kRuleCrossShardState),   std::string(kRuleMutableGlobal),
      std::string(kRuleBadSuppression)};
  return kRules;
}

std::vector<Violation> check_source(
    const std::string& rel, std::string_view source,
    const std::set<std::string>& unordered_names,
    std::size_t* suppressed_count) {
  const LexResult lexed = lex(source);
  std::vector<Violation> raw;
  check_nondeterminism(rel, lexed.tokens, raw);
  if (in_hot_path(rel)) {
    check_hot_path_container(rel, lexed.tokens, raw);
    check_hot_path_alloc(rel, lexed.tokens, raw);
  }
  if (unordered_iter_applies(rel)) {
    check_unordered_iter(rel, lexed.tokens, unordered_names, raw);
  }
  if (cross_shard_state_applies(rel)) {
    check_cross_shard_state(rel, lexed.tokens, raw);
  }
  if (mutable_global_applies(rel)) {
    check_mutable_global(rel, lexed.tokens, raw);
  }
  std::vector<Violation> kept;
  for (Violation& v : raw) {
    if (suppressed(lexed.suppressions, v)) {
      if (suppressed_count != nullptr) ++*suppressed_count;
    } else {
      kept.push_back(std::move(v));
    }
  }
  // A malformed marker is always reported — a typo in `allow(...)` must
  // not silently turn the gate off.
  for (int line : lexed.malformed_suppressions) {
    kept.push_back({rel, line, std::string(kRuleBadSuppression),
                    "unparsable `hwlint:` comment; expected "
                    "`hwlint: allow(rule[, rule...])`"});
  }
  std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return kept;
}

}  // namespace hwlint
