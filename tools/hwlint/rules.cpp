// Rule implementations.  Each rule walks the token stream produced by
// lex(); see hwlint.hpp for what every rule protects and why.
//
// Cross-file rules (unordered-iter, shard-confinement, fp-determinism)
// read the TreeIndex the driver builds over every scanned file before
// the per-file checks run; the include-graph pass lives in
// include_graph.cpp.

#include "hwlint/hwlint.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <tuple>
#include <unordered_set>

namespace hwlint {

namespace {

using Toks = std::vector<Token>;

bool is_ident(const Token& t) { return t.kind == Token::Kind::kIdentifier; }
bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

/// Reassembles the qualified name ending at identifier `i`
/// ("std::chrono::steady_clock" for the token `steady_clock`).
std::string qualified_name(const Toks& t, std::size_t i) {
  std::string name = t[i].text;
  std::size_t k = i;
  while (k >= 2 && is_punct(t[k - 1], "::") && is_ident(t[k - 2])) {
    name.insert(0, t[k - 2].text + "::");
    k -= 2;
  }
  return name;
}

const Token* prev_tok(const Toks& t, std::size_t i) {
  return i > 0 ? &t[i - 1] : nullptr;
}
const Token* next_tok(const Toks& t, std::size_t i) {
  return i + 1 < t.size() ? &t[i + 1] : nullptr;
}

/// Keywords that legitimately precede a call expression (so `return
/// time(...)` is a call, while `std::uint64_t time(...)` is a
/// declaration of a same-named project function).
bool is_call_preceder_keyword(const Token& t) {
  static const std::unordered_set<std::string> kSet = {
      "return", "co_return", "co_yield", "co_await", "else", "do"};
  return is_ident(t) && kSet.count(t.text) != 0;
}

/// True when identifier `i` is a call (followed by `(`) of a free or
/// std-qualified function — member calls (`x.time(...)`) don't count.
bool is_free_call(const Toks& t, std::size_t i) {
  const Token* nx = next_tok(t, i);
  if (nx == nullptr || !is_punct(*nx, "(")) return false;
  const Token* pv = prev_tok(t, i);
  if (pv == nullptr) return true;
  if (is_punct(*pv, ".") || is_punct(*pv, "->")) return false;
  if (is_punct(*pv, "::")) {
    // Qualified: only std:: (or global ::) still counts as the banned
    // library function; anything_else::time() is the project's own.
    if (i >= 2 && is_ident(t[i - 2]) && !is_call_preceder_keyword(t[i - 2])) {
      return t[i - 2].text == "std";
    }
    return true;  // leading ::time()
  }
  // `Type time(...)` / `Type* time(...)` is a declaration, not a call.
  if (is_ident(*pv)) return is_call_preceder_keyword(*pv);
  if (is_punct(*pv, ">") || is_punct(*pv, "*") || is_punct(*pv, "&")) {
    return false;
  }
  return true;
}

// --------------------------------------------------------- rule scoping

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool in_hot_path(std::string_view rel) {
  return starts_with(rel, "src/sim/") || starts_with(rel, "src/net/") ||
         starts_with(rel, "src/tcp/") || starts_with(rel, "src/hwatch/");
}

bool unordered_iter_applies(std::string_view rel) {
  return starts_with(rel, "src/") || starts_with(rel, "tools/");
}

bool mutable_global_applies(std::string_view rel) {
  return starts_with(rel, "src/") && !starts_with(rel, "src/sim/");
}

bool cross_shard_state_applies(std::string_view rel) {
  return starts_with(rel, "src/");
}

bool confinement_applies(std::string_view rel) {
  return starts_with(rel, "src/");
}

bool fp_determinism_applies(std::string_view rel) {
  return starts_with(rel, "src/");
}

// ------------------------------------------------------ nondeterminism

const std::unordered_set<std::string>& banned_qualified() {
  static const std::unordered_set<std::string> kSet = {
      "std::random_device",
      "random_device",
      "std::chrono::system_clock",
      "std::chrono::steady_clock",
      "std::chrono::high_resolution_clock",
      "chrono::system_clock",
      "chrono::steady_clock",
      "chrono::high_resolution_clock",
      "system_clock",
      "steady_clock",
      "high_resolution_clock",
  };
  return kSet;
}

const std::unordered_set<std::string>& banned_calls() {
  static const std::unordered_set<std::string> kSet = {
      "rand",     "srand",         "time",        "clock",
      "gettimeofday", "clock_gettime", "timespec_get", "getrandom",
  };
  return kSet;
}

Violation token_violation(const std::string& rel, int line,
                          std::string_view rule, std::string message) {
  return Violation{rel, line, std::string(rule), std::string(kPassToken),
                   std::move(message), ""};
}

void check_nondeterminism(const std::string& rel, const Toks& t,
                          std::vector<Violation>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string qn = qualified_name(t, i);
    if (banned_qualified().count(qn) != 0) {
      out.push_back(token_violation(
          rel, t[i].line, kRuleNondeterminism,
          "wall-clock / entropy source `" + qn +
              "`; route nondeterminism through sim::SimContext "
              "(seeded sim::Rng, manifest environment section)"));
      continue;
    }
    if (banned_calls().count(t[i].text) != 0 && is_free_call(t, i)) {
      out.push_back(token_violation(
          rel, t[i].line, kRuleNondeterminism,
          "call to `" + t[i].text +
              "()` is nondeterministic; use the SimContext "
              "clock/Rng instead"));
    }
  }
}

// -------------------------------------------------- hot-path-container

void check_hot_path_container(const std::string& rel, const Toks& t,
                              std::vector<Violation>& out) {
  static const std::unordered_set<std::string> kBanned = {
      "std::function", "std::deque", "std::list", "std::map",
      "std::multimap"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string qn = qualified_name(t, i);
    if (kBanned.count(qn) == 0) continue;
    const char* alt =
        qn == "std::function"
            ? "sim::UniqueFunction (move-only, SBO, no per-event heap)"
        : (qn == "std::map" || qn == "std::multimap")
            ? "a flat slab / wheel / sorted vector (a red-black tree "
              "allocates one node per insert — a std::map calendar "
              "queue would undo the scheduler's zero-alloc fast path)"
            : "net::PacketRing / std::vector (deque and list allocate "
              "per node)";
    out.push_back(token_violation(
        rel, t[i].line, kRuleHotPathContainer,
        "`" + qn + "` in a hot-path dir; use " + alt));
  }
}

// ------------------------------------------------------ hot-path-alloc

void check_hot_path_alloc(const std::string& rel, const Toks& t,
                          std::vector<Violation>& out) {
  static const std::unordered_set<std::string> kAllocCalls = {
      "malloc", "calloc", "realloc", "free", "aligned_alloc"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const Token* pv = prev_tok(t, i);
    const Token* nx = next_tok(t, i);
    if (t[i].text == "new") {
      // `operator new` declarations and placement new (`new (buf) T`,
      // including `::new`) are the sanctioned forms.
      if (pv != nullptr && pv->text == "operator") continue;
      if (nx != nullptr && is_punct(*nx, "(")) continue;
      out.push_back(token_violation(
          rel, t[i].line, kRuleHotPathAlloc,
          "raw `new` in a hot-path dir; allocate through the "
          "SimContext pools or pre-reserve at construction"));
      continue;
    }
    if (t[i].text == "delete") {
      if (pv != nullptr && (pv->text == "operator" || is_punct(*pv, "="))) {
        continue;  // deleted function / operator delete declaration
      }
      out.push_back(token_violation(
          rel, t[i].line, kRuleHotPathAlloc,
          "raw `delete` in a hot-path dir; hot-path objects are "
          "pool-recycled or value-owned"));
      continue;
    }
    if (kAllocCalls.count(t[i].text) != 0 && is_free_call(t, i)) {
      out.push_back(token_violation(
          rel, t[i].line, kRuleHotPathAlloc,
          "`" + t[i].text +
              "()` in a hot-path dir; the hot path must not "
              "touch the global allocator"));
    }
  }
}

// ---------------------------------------------------- cross-shard-state

/// Only std::-qualified names are matched: a project type or parameter
/// that happens to be called `mutex` or `thread` is not shared state.
/// Shared with the shard-confinement pass, which uses the same set to
/// decide whether a file is a threading context.
const std::unordered_set<std::string>& threading_primitives() {
  static const std::unordered_set<std::string> kBanned = {
      "std::thread",          "std::jthread",
      "std::mutex",           "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",    "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::atomic",          "std::atomic_flag",
      "std::atomic_ref",      "std::atomic_thread_fence",
      "std::barrier",         "std::latch",
      "std::counting_semaphore", "std::binary_semaphore",
      "std::future",          "std::shared_future",
      "std::promise",         "std::packaged_task",
      "std::async",           "std::stop_source",
      "std::stop_token",
  };
  return kBanned;
}

void check_cross_shard_state(const std::string& rel, const Toks& t,
                             std::vector<Violation>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string qn = qualified_name(t, i);
    if (threading_primitives().count(qn) == 0) continue;
    out.push_back(token_violation(
        rel, t[i].line, kRuleCrossShardState,
        "`" + qn +
            "` shares state across threads; shards own disjoint "
            "SimContexts and communicate only through "
            "net::CrossShardChannel under the sim::ShardGroup barrier "
            "(sanctioned implementations are allowlisted)"));
  }
}

// ------------------------------------------------------- unordered-iter

/// Skips a balanced `<...>` starting at the `<` in position i; returns
/// the index one past the closing `>` (or toks.size() when unbalanced).
std::size_t skip_template_args(const Toks& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(t[i], "<")) ++depth;
    if (is_punct(t[i], ">") && --depth == 0) return i + 1;
    // A `;` at template depth means we misparsed (comparison operator);
    // bail rather than eat the rest of the file.
    if (is_punct(t[i], ";")) return i;
  }
  return i;
}

/// Locates every range-for whose range expression names a member of
/// `names`; calls `fn(name_index, colon, close)` for each.
template <typename Fn>
void for_each_unordered_range_for(const Toks& t,
                                  const std::set<std::string>& names,
                                  Fn&& fn) {
  if (names.empty()) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i]) || t[i].text != "for" || i + 1 >= t.size() ||
        !is_punct(t[i + 1], "(")) {
      continue;
    }
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t k = i + 1; k < t.size(); ++k) {
      if (is_punct(t[k], "(")) ++depth;
      if (is_punct(t[k], ")") && --depth == 0) {
        close = k;
        break;
      }
      if (depth == 1 && colon == 0 && is_punct(t[k], ":")) colon = k;
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (is_ident(t[k]) && names.count(t[k].text) != 0) {
        fn(k, colon, close);
        break;
      }
    }
  }
}

void check_unordered_iter(const std::string& rel, const Toks& t,
                          const std::set<std::string>& names,
                          std::vector<Violation>& out) {
  if (names.empty()) return;
  for_each_unordered_range_for(
      t, names, [&](std::size_t k, std::size_t, std::size_t) {
        out.push_back(token_violation(
            rel, t[k].line, kRuleUnorderedIter,
            "range-for over unordered container `" + t[k].text +
                "`; hash order is implementation-defined — copy to a "
                "sorted vector or use an ordered container"));
      });
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Explicit iterator walk: name.begin() / cbegin / rbegin / crbegin.
    if (is_ident(t[i]) && names.count(t[i].text) != 0 && i + 2 < t.size() &&
        (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
        is_ident(t[i + 2])) {
      // `.end()` alone is NOT flagged: `it != m.end()` after a find()
      // is the sanctioned point-lookup idiom.  Walks start at begin().
      static const std::unordered_set<std::string> kIterFns = {
          "begin", "cbegin", "rbegin", "crbegin"};
      if (kIterFns.count(t[i + 2].text) != 0 && i + 3 < t.size() &&
          is_punct(t[i + 3], "(")) {
        out.push_back(token_violation(
            rel, t[i].line, kRuleUnorderedIter,
            "iterator walk over unordered container `" + t[i].text +
                "`; iteration order is implementation-defined"));
      }
    }
  }
}

// ------------------------------------------------------ mutable-global

/// Statement-head classification for scope tracking.
enum class ScopeKind { kNamespace, kClass, kFunction, kOther };

bool head_has(const Toks& head, std::string_view word) {
  for (const Token& t : head) {
    if (t.kind == Token::Kind::kIdentifier && t.text == word) return true;
  }
  return false;
}
bool head_has_punct(const Toks& head, std::string_view p) {
  for (const Token& t : head) {
    if (t.kind == Token::Kind::kPunct && t.text == p) return true;
  }
  return false;
}

/// Decides whether the tokens of one namespace-scope statement declare a
/// mutable variable (as opposed to a function, type, alias, ...).
bool head_is_mutable_var(const Toks& head) {
  if (head.size() < 2) return false;
  static const std::array<std::string_view, 12> kSkipWords = {
      "using",  "typedef", "friend",    "template",  "operator", "class",
      "struct", "union",   "enum",      "const",     "constexpr", "consteval"};
  for (std::string_view w : kSkipWords) {
    if (head_has(head, w)) return false;
  }
  if (!head_has(head, "static") && !head_has(head, "thread_local") &&
      !head_has(head, "extern")) {
    // Plain `int g = 0;` at namespace scope is just as mutable, but only
    // flag it when it really looks like a variable (has an initializer);
    // without one we cannot cheaply tell a declaration from a macro use.
    if (!head_has_punct(head, "=")) return false;
  }
  // Function if the first `(` comes before any `=`.
  std::size_t first_paren = head.size();
  std::size_t first_eq = head.size();
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (first_paren == head.size() && head[i].kind == Token::Kind::kPunct &&
        head[i].text == "(") {
      first_paren = i;
    }
    if (first_eq == head.size() && head[i].kind == Token::Kind::kPunct &&
        head[i].text == "=") {
      first_eq = i;
    }
  }
  if (first_paren < first_eq) return false;
  // Needs at least a type token and a name token.
  int idents = 0;
  for (const Token& t : head) {
    if (t.kind == Token::Kind::kIdentifier) ++idents;
  }
  return idents >= 2;
}

/// Walks namespace-scope statements; calls `fn(head, line)` for every
/// statement head that declares a mutable variable.  Shared between
/// mutable-global (src/ outside sim) and the shard-confinement
/// unannotated-static check (src/sim).
template <typename Fn>
void for_each_mutable_global(const Toks& t, Fn&& fn) {
  std::vector<ScopeKind> scopes;
  Toks head;
  auto at_namespace_scope = [&] {
    return scopes.empty() || scopes.back() == ScopeKind::kNamespace;
  };
  for (const Token& tok : t) {
    if (is_punct(tok, "{")) {
      ScopeKind kind = ScopeKind::kOther;
      if (head_has(head, "namespace")) {
        kind = ScopeKind::kNamespace;
      } else if (head_has_punct(head, "(") || head_has_punct(head, ")")) {
        kind = ScopeKind::kFunction;
      } else if (head_has(head, "class") || head_has(head, "struct") ||
                 head_has(head, "union") || head_has(head, "enum")) {
        kind = ScopeKind::kClass;
      } else if (at_namespace_scope() && head_is_mutable_var(head)) {
        // Brace-initialized namespace-scope variable: `static int x{0};`
        fn(head, tok.line);
      }
      scopes.push_back(kind);
      head.clear();
      continue;
    }
    if (is_punct(tok, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      head.clear();
      continue;
    }
    if (is_punct(tok, ";")) {
      if (at_namespace_scope() && head_is_mutable_var(head)) {
        fn(head, head.front().line);
      }
      head.clear();
      continue;
    }
    if (head.size() < 512) head.push_back(tok);
  }
}

void check_mutable_global(const std::string& rel, const Toks& t,
                          std::vector<Violation>& out) {
  for_each_mutable_global(t, [&](const Toks&, int line) {
    out.push_back(token_violation(
        rel, line, kRuleMutableGlobal,
        "mutable namespace-scope state; SimContext owns all "
        "mutable state so parallel scenarios share nothing "
        "(const/constexpr is fine)"));
  });
}

// --------------------------------------------------- shard-confinement

constexpr std::string_view kAnnoConfined = "HWATCH_SHARD_CONFINED";
constexpr std::string_view kAnnoShared = "HWATCH_SHARD_SHARED";
constexpr std::string_view kAnnoDeterministic = "HWATCH_DETERMINISTIC_PLANE";

/// RNG-root constructions banned inside DETERMINISTIC_PLANE functions on
/// top of the wall-clock/entropy sets: engines seeded in place bypass
/// the SimContext's derived-seed discipline.
const std::unordered_set<std::string>& rng_root_names() {
  static const std::unordered_set<std::string> kSet = {
      "std::mt19937",       "std::mt19937_64",
      "std::minstd_rand",   "std::minstd_rand0",
      "std::default_random_engine", "std::ranlux24",
      "std::ranlux48",      "std::knuth_b",
  };
  return kSet;
}

/// Index one past the `)` matching the `(` at `open` (or toks.size()).
std::size_t skip_parens(const Toks& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], "(")) ++depth;
    if (is_punct(t[i], ")") && --depth == 0) return i + 1;
  }
  return t.size();
}

/// Index one past the `}` matching the `{` at `open` (or toks.size()).
std::size_t skip_braces(const Toks& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], "{")) ++depth;
    if (is_punct(t[i], "}") && --depth == 0) return i + 1;
  }
  return t.size();
}

void check_shard_confinement(const std::string& rel, const Toks& t,
                             const TreeIndex& index,
                             std::vector<Violation>& out) {
  // (1) Confined types referenced from a threading context: a TU that
  // uses std:: threading primitives may not touch shard-confined types
  // — cross-shard traffic goes through the sanctioned (allowlisted)
  // shard_group / shard_channel machinery only.
  std::string first_primitive;
  int first_primitive_line = 0;
  for (std::size_t i = 0; i < t.size() && first_primitive.empty(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string qn = qualified_name(t, i);
    if (threading_primitives().count(qn) != 0) {
      first_primitive = qn;
      first_primitive_line = t[i].line;
    }
  }
  if (!first_primitive.empty() && !index.confined_types.empty()) {
    std::set<std::string> flagged;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i])) continue;
      const auto it = index.confined_types.find(t[i].text);
      if (it == index.confined_types.end()) continue;
      // The declaring file itself is exempt (the annotation lives there).
      if (it->second.compare(0, rel.size(), rel) == 0 &&
          it->second.size() > rel.size() && it->second[rel.size()] == ':') {
        continue;
      }
      if (!flagged.insert(t[i].text).second) continue;  // once per type
      out.push_back(Violation{
          rel, t[i].line, std::string(kRuleShardConfinement),
          std::string(kPassShardConfinement),
          "`" + t[i].text + "` is HWATCH_SHARD_CONFINED but this file is "
              "a threading context (`" + first_primitive + "` at line " +
              std::to_string(first_primitive_line) +
              "); confined types may only cross shards through the "
              "sanctioned ShardInbox/ShardChannel machinery",
          "HWATCH_SHARD_CONFINED at " + it->second});
    }
  }

  // (2) Mutable namespace-scope state in src/sim must carry an explicit
  // HWATCH_SHARD_SHARED marker (outside src/sim the mutable-global rule
  // bans it outright).
  if (starts_with(rel, "src/sim/")) {
    for_each_mutable_global(t, [&](const Toks& head, int line) {
      if (head_has(head, std::string(kAnnoShared))) return;
      out.push_back(Violation{
          rel, line, std::string(kRuleShardConfinement),
          std::string(kPassShardConfinement),
          "mutable namespace-scope state in src/sim without "
          "HWATCH_SHARD_SHARED; either move it into SimContext or mark "
          "it shared and document its synchronization at the "
          "declaration (src/sim/annotations.hpp)",
          ""});
    });
  }

  // (3) HWATCH_DETERMINISTIC_PLANE function definitions may not read
  // wall clocks, construct entropy sources, seed RNG engines or call
  // RNG-root constructors — even inside nondeterminism-allowlisted TUs.
  if (index.deterministic_fns.empty()) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const auto fn = index.deterministic_fns.find(t[i].text);
    if (fn == index.deterministic_fns.end()) continue;
    const Token* nx = next_tok(t, i);
    if (nx == nullptr || !is_punct(*nx, "(")) continue;
    // Find the definition body: after the parameter list, a `{` before
    // any `;` (member-init lists are crossed; a `;` first means this was
    // a declaration or a call statement).
    std::size_t k = skip_parens(t, i + 1);
    std::size_t body = 0;
    for (; k < t.size(); ++k) {
      if (is_punct(t[k], "{")) {
        body = k;
        break;
      }
      if (is_punct(t[k], ";")) break;
    }
    if (body == 0) continue;
    const std::size_t end = skip_braces(t, body);
    for (std::size_t b = body; b < end; ++b) {
      if (!is_ident(t[b])) continue;
      const std::string qn = qualified_name(t, b);
      std::string what;
      if (banned_qualified().count(qn) != 0 ||
          rng_root_names().count(qn) != 0) {
        what = qn;
      } else if (banned_calls().count(t[b].text) != 0 && is_free_call(t, b)) {
        what = t[b].text + "()";
      } else if (t[b].text == "seed" && b >= 1 &&
                 (is_punct(t[b - 1], ".") || is_punct(t[b - 1], "->")) &&
                 b + 1 < t.size() && is_punct(t[b + 1], "(")) {
        what = ".seed()";
      }
      if (what.empty()) continue;
      out.push_back(Violation{
          rel, t[b].line, std::string(kRuleShardConfinement),
          std::string(kPassShardConfinement),
          "`" + what + "` inside deterministic-plane function `" +
              fn->first +
              "`; HWATCH_DETERMINISTIC_PLANE code must be a pure "
              "function of simulation state (no wall clocks, no RNG "
              "roots, no reseeding)",
          "HWATCH_DETERMINISTIC_PLANE at " + fn->second});
    }
  }
}

// ----------------------------------------------------- fp-determinism

/// A number token that denotes a floating literal: decimal with a `.`
/// or exponent, hex with a `.` or binary exponent, or an f/F suffix.
bool is_fp_literal(const Token& tok) {
  if (tok.kind != Token::Kind::kNumber) return false;
  const std::string& s = tok.text;
  const bool hex = s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
  if (s.find('.') != std::string::npos) return true;
  if (hex) return s.find('p') != std::string::npos ||
                  s.find('P') != std::string::npos;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) return false;
  if (s.find('e') != std::string::npos || s.find('E') != std::string::npos) {
    return true;
  }
  return s.back() == 'f' || s.back() == 'F';
}

/// Non-portable libm entry points: accuracy is implementation-defined,
/// so two libms legally produce different last bits and break the
/// cross-platform byte-identity of manifests.  sqrt and fma are exempt
/// (IEEE 754 requires correct rounding); so are the exact/rounding ops.
const std::unordered_set<std::string>& nonportable_libm() {
  static const std::unordered_set<std::string> kSet = {
      "pow",   "powf",  "powl",   "exp",    "exp2",   "expm1", "log",
      "log2",  "log10", "log1p",  "tgamma", "lgamma", "sin",   "cos",
      "tan",   "asin",  "acos",   "atan",   "atan2",  "sinh",  "cosh",
      "tanh",  "asinh", "acosh",  "atanh",  "erf",    "erfc",  "cbrt",
      "hypot",
  };
  return kSet;
}

/// Names declared float / double in this file (locals, members,
/// parameters).  Deliberately per-file, not tree-wide: one `double c`
/// anywhere would otherwise turn every `c == '"'` in the tree into a
/// false positive.
std::set<std::string> collect_fp_names(const Toks& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i]) || (t[i].text != "float" && t[i].text != "double")) {
      continue;
    }
    // Skip declarator decorations; template args (`vector<double>`) and
    // casts have no trailing identifier and fall out naturally.
    std::size_t k = i + 1;
    while (k < t.size() &&
           (is_punct(t[k], "&") || is_punct(t[k], "*") ||
            (is_ident(t[k]) && t[k].text == "const"))) {
      ++k;
    }
    if (k >= t.size() || !is_ident(t[k])) continue;
    const Token* after = next_tok(t, k);
    // `name(` is a function returning float/double, not a variable.
    if (after != nullptr && is_punct(*after, "(")) continue;
    names.insert(t[k].text);
    // `double a = 0, b = 1;` — pick up names right after top-level commas.
    std::size_t m = k + 1;
    int depth = 0;
    while (m < t.size() && !is_punct(t[m], ";") && !is_punct(t[m], "{") &&
           !(depth == 0 && is_punct(t[m], ")"))) {
      if (is_punct(t[m], "(")) ++depth;
      if (is_punct(t[m], ")")) --depth;
      if (depth == 0 && is_punct(t[m], ",") && m + 1 < t.size() &&
          is_ident(t[m + 1])) {
        names.insert(t[m + 1].text);
      }
      ++m;
    }
  }
  return names;
}

bool is_fp_operand(const Toks& t, std::size_t i,
                   const std::set<std::string>& fp_names) {
  if (is_fp_literal(t[i])) return true;
  return is_ident(t[i]) && fp_names.count(t[i].text) != 0;
}

void check_fp_determinism(const std::string& rel, const Toks& t,
                          const TreeIndex& index,
                          std::vector<Violation>& out) {
  const std::set<std::string> fp_names = collect_fp_names(t);
  auto fp_violation = [&](int line, std::string message,
                          std::string evidence) {
    out.push_back(Violation{rel, line, std::string(kRuleFpDeterminism),
                            std::string(kPassFpDeterminism),
                            std::move(message), std::move(evidence)});
  };

  // (1) Direct ==/!= with a floating operand on either side.
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!is_punct(t[i], "==") && !is_punct(t[i], "!=")) continue;
    // `operator==` declarations are not comparisons.
    if (is_ident(t[i - 1]) && t[i - 1].text == "operator") continue;
    // Right side may be a signed literal: x == -0.5
    std::size_t rhs = i + 1;
    if ((is_punct(t[rhs], "-") || is_punct(t[rhs], "+")) &&
        rhs + 1 < t.size()) {
      ++rhs;
    }
    std::string operand;
    if (is_fp_operand(t, i - 1, fp_names)) {
      operand = t[i - 1].text;
    } else if (is_fp_operand(t, rhs, fp_names)) {
      operand = t[rhs].text;
    } else {
      continue;
    }
    fp_violation(
        t[i].line,
        "floating-point `" + t[i].text + "` against `" + operand +
            "`; representation noise makes exact comparison "
            "platform-dependent — compare against an integer "
            "representation or use an explicit tolerance",
        "operand `" + operand + "` is floating-point");
  }

  // (2) Float accumulation inside iteration over an unordered
  // container: summation order is implementation-defined, so the same
  // flows can produce different last bits on different hosts.
  for_each_unordered_range_for(
      t, index.unordered_names,
      [&](std::size_t name_idx, std::size_t, std::size_t close) {
        // Loop body: `{...}` or a single statement up to `;`.
        std::size_t body = close + 1;
        if (body >= t.size()) return;
        const std::size_t end = is_punct(t[body], "{")
                                    ? skip_braces(t, body)
                                    : [&] {
                                        std::size_t e = body;
                                        while (e < t.size() &&
                                               !is_punct(t[e], ";")) {
                                          ++e;
                                        }
                                        return e;
                                      }();
        for (std::size_t b = body; b < end; ++b) {
          if (t[b].kind != Token::Kind::kPunct) continue;
          if (t[b].text != "+=" && t[b].text != "-=" && t[b].text != "*=" &&
              t[b].text != "/=") {
            continue;
          }
          if (b == 0 || !is_ident(t[b - 1]) ||
              fp_names.count(t[b - 1].text) == 0) {
            continue;
          }
          fp_violation(
              t[b].line,
              "float accumulation `" + t[b - 1].text + " " + t[b].text +
                  "` over unordered container `" + t[name_idx].text +
                  "`; summation order is implementation-defined — "
                  "accumulate over a sorted copy",
              "`" + t[name_idx].text + "` declared unordered");
        }
      });
  // std::accumulate over an unordered container's iterators.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i]) || t[i].text != "accumulate" || !is_free_call(t, i)) {
      continue;
    }
    const std::size_t end = skip_parens(t, i + 1);
    for (std::size_t k = i + 2; k < end; ++k) {
      if (is_ident(t[k]) && index.unordered_names.count(t[k].text) != 0) {
        fp_violation(
            t[i].line,
            "std::accumulate over unordered container `" + t[k].text +
                "`; summation order is implementation-defined — "
                "accumulate over a sorted copy",
            "`" + t[k].text + "` declared unordered");
        break;
      }
    }
  }

  // (3) Non-portable libm calls.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i]) || nonportable_libm().count(t[i].text) == 0 ||
        !is_free_call(t, i)) {
      continue;
    }
    fp_violation(
        t[i].line,
        "non-portable libm call `" + t[i].text +
            "()`; accuracy is implementation-defined, so results can "
            "differ across platforms — use integer/fixed-point math, "
            "sqrt/fma (correctly rounded), or suppress with a "
            "justification",
        "");
  }
}

// --------------------------------------------------------- suppression

bool suppressed(const std::vector<Suppression>& sups, const Violation& v) {
  for (const Suppression& s : sups) {
    const bool line_match =
        s.line == v.line || (s.whole_line && s.line + 1 == v.line);
    if (!line_match) continue;
    if (s.rules.empty()) return true;  // allow(*)
    for (const std::string& r : s.rules) {
      if (r == v.rule) return true;
    }
  }
  return false;
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      std::string(kRuleNondeterminism),    std::string(kRuleHotPathContainer),
      std::string(kRuleHotPathAlloc),      std::string(kRuleUnorderedIter),
      std::string(kRuleCrossShardState),   std::string(kRuleMutableGlobal),
      std::string(kRuleBadSuppression),    std::string(kRuleLayering),
      std::string(kRuleShardConfinement),  std::string(kRuleFpDeterminism)};
  return kRules;
}

const std::vector<std::string>& all_passes() {
  static const std::vector<std::string> kPasses = {
      std::string(kPassToken), std::string(kPassIncludeGraph),
      std::string(kPassShardConfinement), std::string(kPassFpDeterminism)};
  return kPasses;
}

bool known_rule(std::string_view rule) {
  for (const std::string& r : all_rules()) {
    if (r == rule) return true;
  }
  return false;
}

void index_file(const std::string& rel, const LexResult& lexed,
                TreeIndex& index) {
  const Toks& t = lexed.tokens;
  const auto site = [&](int line) {
    return rel + ":" + std::to_string(line);
  };

  static const std::unordered_set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;

    // Names declared as unordered containers (members, locals, params).
    if (kUnordered.count(t[i].text) != 0) {
      std::size_t k = i + 1;
      if (k < t.size() && is_punct(t[k], "<")) {
        k = skip_template_args(t, k);
        // Skip declarator decorations (`&`, `*`, trailing `const`)
        // between the template closer and the declared name; `&&` is
        // two `&` tokens.
        while (k < t.size() &&
               (is_punct(t[k], "&") || is_punct(t[k], "*") ||
                (is_ident(t[k]) && t[k].text == "const"))) {
          ++k;
        }
        if (k < t.size() && is_ident(t[k])) {
          const Token* after = next_tok(t, k);
          // `name(` is a function returning the container — skip.
          if (after == nullptr || !is_punct(*after, "(")) {
            index.unordered_names.insert(t[k].text);
          }
        }
      }
      continue;
    }

    // Annotated class declarations: `class HWATCH_SHARD_CONFINED Name`.
    if (t[i].text == "class" || t[i].text == "struct") {
      if (i + 2 >= t.size() || !is_ident(t[i + 1]) || !is_ident(t[i + 2])) {
        continue;
      }
      if (t[i + 1].text == kAnnoConfined) {
        index.confined_types.emplace(t[i + 2].text, site(t[i + 2].line));
      } else if (t[i + 1].text == kAnnoShared) {
        index.shared_types.emplace(t[i + 2].text, site(t[i + 2].line));
      }
      continue;
    }

    // Annotated functions: the first identifier followed by `(` after
    // the marker is the function name (return types, qualifiers and
    // template arguments are crossed; `operator` overloads are skipped).
    if (t[i].text == kAnnoDeterministic) {
      const std::size_t limit = std::min(t.size(), i + 40);
      for (std::size_t k = i + 1; k + 1 < limit; ++k) {
        if (!is_ident(t[k]) || t[k].text == "operator") continue;
        if (is_punct(t[k + 1], "(")) {
          index.deterministic_fns.emplace(t[k].text, site(t[k].line));
          break;
        }
      }
    }
  }
}

std::vector<Violation> check_file(const std::string& rel,
                                  const LexResult& lexed,
                                  const TreeIndex& index,
                                  std::size_t* suppressed_count) {
  std::vector<Violation> raw;
  check_nondeterminism(rel, lexed.tokens, raw);
  if (in_hot_path(rel)) {
    check_hot_path_container(rel, lexed.tokens, raw);
    check_hot_path_alloc(rel, lexed.tokens, raw);
  }
  if (unordered_iter_applies(rel)) {
    check_unordered_iter(rel, lexed.tokens, index.unordered_names, raw);
  }
  if (cross_shard_state_applies(rel)) {
    check_cross_shard_state(rel, lexed.tokens, raw);
  }
  if (mutable_global_applies(rel)) {
    check_mutable_global(rel, lexed.tokens, raw);
  }
  if (confinement_applies(rel)) {
    check_shard_confinement(rel, lexed.tokens, index, raw);
  }
  if (fp_determinism_applies(rel)) {
    check_fp_determinism(rel, lexed.tokens, index, raw);
  }
  std::vector<Violation> kept;
  for (Violation& v : raw) {
    if (suppressed(lexed.suppressions, v)) {
      if (suppressed_count != nullptr) ++*suppressed_count;
    } else {
      kept.push_back(std::move(v));
    }
  }
  // A malformed marker is always reported — a typo in `allow(...)` must
  // not silently turn the gate off.
  for (int line : lexed.malformed_suppressions) {
    kept.push_back(Violation{rel, line, std::string(kRuleBadSuppression),
                             std::string(kPassToken),
                             "unparsable `hwlint:` comment; expected "
                             "`hwlint: allow(rule[, rule...])`",
                             ""});
  }
  // ...and so must a well-formed marker naming a rule this binary does
  // not know: `allow(layerng)` is a disabled gate, not a suppression.
  for (const Suppression& s : lexed.suppressions) {
    for (const std::string& r : s.rules) {
      if (known_rule(r)) continue;
      kept.push_back(Violation{rel, s.line, std::string(kRuleBadSuppression),
                               std::string(kPassToken),
                               "unknown rule `" + r +
                                   "` in `hwlint: allow(...)`; known rules: "
                                   "run `hwlint --help`",
                               ""});
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return kept;
}

std::vector<Violation> check_source(const std::string& rel,
                                    std::string_view source,
                                    std::size_t* suppressed_count) {
  const LexResult lexed = lex(source);
  TreeIndex index;
  index_file(rel, lexed, index);
  return check_file(rel, lexed, index, suppressed_count);
}

}  // namespace hwlint
