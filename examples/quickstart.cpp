// Quickstart: build a small dumbbell, run a handful of long DCTCP flows
// plus one incast epoch of short flows, with and without HWatch, and
// print the headline numbers.  This is the 60-second tour of the API.
#include <iostream>

#include "api/scenario.hpp"
#include "stats/table.hpp"

using namespace hwatch;

namespace {

api::DumbbellScenarioConfig base_config() {
  api::DumbbellScenarioConfig cfg;
  cfg.pairs = 20;
  cfg.base_rtt = sim::microseconds(100);

  // Switch buffers: 250-packet bottleneck, step ECN marking at 20%.
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 250;
  cfg.core_aqm.mark_threshold_packets = 50;
  cfg.edge_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.edge_aqm.buffer_packets = 250;
  cfg.edge_aqm.mark_threshold_packets = 50;

  // 10 long-lived DCTCP flows...
  workload::SenderGroup longs;
  longs.transport = tcp::Transport::kDctcp;
  longs.count = 10;
  cfg.long_groups = {longs};

  // ...and 10 short-lived DCTCP senders firing 10 KB incast epochs.
  workload::SenderGroup shorts = longs;
  cfg.short_groups = {shorts};
  cfg.incast.epochs = 3;
  cfg.incast.first_epoch = sim::milliseconds(20);
  cfg.incast.epoch_interval = sim::milliseconds(30);
  cfg.incast.flow_bytes = 10'000;

  cfg.duration = sim::milliseconds(120);
  cfg.seed = 42;
  return cfg;
}

void report(const std::string& name, const api::ScenarioResults& res) {
  const auto fct = res.short_fct_cdf_ms();
  const auto goodput = res.long_goodput_cdf_gbps();
  const auto fct_sum = fct.summarize();
  std::cout << "--- " << name << " ---\n"
            << "  short flows completed : " << fct_sum.count << " (missing "
            << res.incomplete_short_flows() << ")\n"
            << "  short FCT mean / p99  : "
            << stats::Table::num(fct_sum.mean, 3) << " / "
            << stats::Table::num(fct_sum.p99, 3) << " ms\n"
            << "  long goodput mean     : "
            << stats::Table::num(goodput.summarize().mean, 3) << " Gb/s\n"
            << "  bottleneck drops      : " << res.bottleneck_queue.dropped
            << ", marks: " << res.bottleneck_queue.ecn_marked << "\n"
            << "  retransmits/timeouts  : " << res.retransmits << "/"
            << res.timeouts << "\n"
            << "  mean utilization      : "
            << stats::Table::num(100 * res.mean_utilization(), 1) << " %\n"
            << "  events simulated      : " << res.events_executed << "\n";
  if (res.shim.probes_injected > 0) {
    std::cout << "  hwatch: probes=" << res.shim.probes_injected
              << " synack-rewrites=" << res.shim.synacks_rewritten
              << " ack-rewrites=" << res.shim.acks_rewritten << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "HWatch quickstart: 20-pair 10G dumbbell, DCTCP tenants,\n"
            << "3 incast epochs of 10 KB flows against 10 bulk flows.\n\n";

  api::DumbbellScenarioConfig plain = base_config();
  report("DCTCP (no HWatch)", api::run_dumbbell(plain));

  api::DumbbellScenarioConfig watched = base_config();
  watched.hwatch_enabled = true;
  watched.hwatch.probe_count = 10;
  watched.hwatch.policy.batch_interval = sim::microseconds(50);
  watched.hwatch.round_interval = sim::microseconds(100);
  report("DCTCP + HWatch", api::run_dumbbell(watched));

  return 0;
}
