// Low-level API tour: build a fat-tree by hand, attach transports
// directly, and install a custom hypervisor filter.
//
// The scenario API (api::run_dumbbell / run_leaf_spine) covers the
// paper's experiments; this example shows the layers underneath, which
// is what you extend to study new topologies, AQMs or shim policies:
//   * net::Network + topo::build_fat_tree  — fabric with ECMP
//   * tcp::TcpConnection                   — flows between any hosts
//   * net::PacketFilter                    — your own NetFilter hook
//   * core::install_hwatch                 — the paper's shim
#include <iostream>

#include "hwatch/shim.hpp"
#include "net/network.hpp"
#include "stats/table.hpp"
#include "tcp/connection.hpp"
#include "topo/fat_tree.hpp"

using namespace hwatch;

namespace {

/// A custom hypervisor hook: counts CE-marked arrivals per host — the
/// kind of telemetry a real operator shim exports.
class CeTelemetry final : public net::PacketFilter {
 public:
  net::FilterVerdict on_outbound(net::Packet&) override {
    return net::FilterVerdict::kPass;
  }
  net::FilterVerdict on_inbound(net::Packet& p) override {
    ++packets_;
    if (p.ip.ecn == net::Ecn::kCe) ++ce_;
    return net::FilterVerdict::kPass;
  }
  double ce_fraction() const {
    return packets_ ? static_cast<double>(ce_) / packets_ : 0.0;
  }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t ce_ = 0;
};

}  // namespace

int main() {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network(ctx);

  // k=4 fat-tree: 16 hosts, 20 switches, ECMP across 4 core switches.
  topo::FatTreeConfig ft;
  ft.k = 4;
  ft.link_rate = sim::DataRate::gbps(10);
  ft.base_rtt = sim::microseconds(100);
  ft.qdisc = [] {
    return std::make_unique<net::DctcpThresholdQueue>(
        net::QueueLimits::in_bytes(250 * 1500), 50 * 1500);
  };
  topo::FatTree tree = topo::build_fat_tree(network, ft);
  std::cout << "fat-tree k=4: " << tree.hosts.size() << " hosts, "
            << tree.cores.size() << " cores, "
            << tree.aggregations.size() << " agg, " << tree.edges.size()
            << " edge switches\n";

  // Telemetry filter + HWatch shim on one destination host.
  net::Host* dst = tree.hosts.back();
  CeTelemetry telemetry;
  dst->install_filter(&telemetry);
  sim::Rng rng(42);
  core::HWatchConfig hw;
  auto shim_rx = core::install_hwatch(network, *dst, hw, rng.fork());
  std::vector<std::unique_ptr<core::HypervisorShim>> shims_tx;

  // Cross-pod incast: every host of pod 0 sends 500 KB to `dst`.
  tcp::TcpConfig t;
  t.ecn = tcp::EcnMode::kDctcp;
  t.min_rto = sim::milliseconds(10);
  t.initial_rto = sim::milliseconds(10);
  std::vector<std::unique_ptr<tcp::TcpConnection>> conns;
  const std::uint32_t senders = tree.hosts_per_pod();
  for (std::uint32_t i = 0; i < senders; ++i) {
    net::Host* src = tree.hosts[i];
    shims_tx.push_back(core::install_hwatch(network, *src, hw, rng.fork()));
    conns.push_back(std::make_unique<tcp::TcpConnection>(
        network, *src, *dst, static_cast<std::uint16_t>(2000 + i),
        static_cast<std::uint16_t>(5000 + i), tcp::Transport::kDctcp, t));
    conns.back()->start(500'000);
  }

  sched.run_until(sim::seconds(1.0));

  stats::Table table({"flow", "path (ECMP picks per flow)", "FCT(ms)",
                      "retx", "timeouts"});
  for (std::uint32_t i = 0; i < senders; ++i) {
    const auto& s = conns[i]->sender();
    table.add_row({std::to_string(i), tree.hosts[i]->name() + " -> " +
                       dst->name(),
                   s.fct() == sim::kTimeNever
                       ? "-"
                       : stats::Table::num(sim::to_millis(s.fct()), 3),
                   std::to_string(s.stats().retransmits),
                   std::to_string(s.stats().timeouts)});
  }
  table.print(std::cout);
  std::cout << "CE fraction observed by the custom telemetry filter at "
            << dst->name() << ": "
            << stats::Table::num(100 * telemetry.ce_fraction(), 2)
            << " %\n"
            << "HWatch at the receiver tracked "
            << shim_rx->flow_table().created() << " flows, rewrote "
            << shim_rx->stats().acks_rewritten << " ACK windows\n"
            << "events simulated: " << sched.executed() << "\n";
  return 0;
}
