// Multi-tenant coexistence: three TCP flavours share one fabric.
//
// A third of the tenants run DCTCP, a third ECN-responsive NewReno, and
// a third ECN-blind NewReno (a misbehaving or legacy stack) — the
// heterogeneity of Figure 2 that breaks DCTCP's queue regulation.  The
// example then shows the operator-side remedy: installing HWatch on the
// hypervisors reins in the blind tenants through their receive windows
// without touching any guest.
#include <iostream>

#include "api/scenario.hpp"
#include "stats/table.hpp"

using namespace hwatch;

namespace {

api::ScenarioResults run(bool hwatch_on) {
  api::DumbbellScenarioConfig cfg;
  cfg.pairs = 32;
  cfg.base_rtt = sim::microseconds(100);
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 250;
  cfg.core_aqm.mark_threshold_packets = 62;
  cfg.core_aqm.byte_mode = true;
  cfg.core_aqm.mtu_bytes = 1000;
  cfg.edge_aqm = cfg.core_aqm;

  tcp::TcpConfig base;
  base.mss = 942;
  base.min_rto = sim::milliseconds(200);
  base.initial_rto = sim::milliseconds(200);

  tcp::TcpConfig dctcp_t = base;
  dctcp_t.ecn = tcp::EcnMode::kDctcp;
  tcp::TcpConfig classic_t = base;
  classic_t.ecn = tcp::EcnMode::kClassic;
  tcp::TcpConfig blind_t = base;
  blind_t.ecn = tcp::EcnMode::kBlind;

  cfg.long_groups = {
      {tcp::Transport::kDctcp, dctcp_t, 4, "dctcp"},
      {tcp::Transport::kNewReno, classic_t, 4, "reno-ecn"},
      {tcp::Transport::kNewReno, blind_t, 4, "reno-blind"},
      {tcp::Transport::kCubic, classic_t, 4, "cubic"},
  };
  cfg.short_groups = cfg.long_groups;
  cfg.incast.epochs = 4;
  cfg.incast.first_epoch = sim::milliseconds(50);
  cfg.incast.epoch_interval = sim::milliseconds(100);
  cfg.duration = sim::milliseconds(500);
  cfg.seed = 3;

  if (hwatch_on) {
    cfg.hwatch_enabled = true;
    cfg.hwatch.mss = base.mss;
    cfg.hwatch.min_window_bytes = base.mss;
    cfg.hwatch.probe_span = sim::microseconds(50);
    cfg.hwatch.policy.batch_interval = sim::microseconds(50);
    cfg.hwatch.round_interval = sim::microseconds(100);
  }
  return api::run_dumbbell(cfg);
}

void report(const std::string& name, const api::ScenarioResults& res) {
  std::cout << "--- " << name << " ---\n";
  stats::Table t({"tenant flavour", "long flows", "goodput mean(Gb/s)",
                  "goodput max/min", "short FCT mean(ms)",
                  "short FCT p99(ms)"});
  for (const char* flavour : {"dctcp", "newreno", "cubic"}) {
    stats::Cdf goodput;
    stats::Cdf fct;
    for (const auto& r : res.records) {
      if (r.transport != flavour) continue;
      if (r.klass == stats::FlowClass::kLong) {
        goodput.add(r.goodput_bps / 1e9);
      } else if (r.completed) {
        fct.add(r.fct_ms());
      }
    }
    if (goodput.empty()) continue;
    const auto g = goodput.summarize();
    const auto f = fct.summarize();
    t.add_row({flavour, std::to_string(g.count),
               stats::Table::num(g.mean, 3),
               g.min > 0 ? stats::Table::num(g.max / g.min, 1) + "x" : "-",
               stats::Table::num(f.mean, 3),
               stats::Table::num(f.p99, 3)});
  }
  t.print(std::cout);
  std::cout << "bottleneck max queue: " << res.bottleneck_queue.max_len_pkts
            << " pkts, drops: " << res.bottleneck_queue.dropped
            << ", timeouts: " << res.timeouts << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Multi-tenant mix: DCTCP + ECN-responsive NewReno + "
               "ECN-blind NewReno + CUBIC\nsharing one 10 Gb/s fabric "
               "(each tenant brings its preferred stack).\n\n";
  report("mixed tenants, no HWatch (Figure 2's pathology)", run(false));
  report("mixed tenants + HWatch on all hypervisors", run(true));
  return 0;
}
