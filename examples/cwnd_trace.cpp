// Congestion-window traces: NewReno vs CUBIC vs DCTCP on the same kind
// of bottleneck, sampled over time — the classic sawtooth comparison,
// printed as ASCII sparklines.  Demonstrates the live observability of
// the transport layer (every sender exposes cwnd/ssthresh/RTT).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "stats/table.hpp"
#include "tcp/connection.hpp"

using namespace hwatch;

namespace {

struct Trace {
  std::string name;
  std::vector<double> cwnd_segments;
  double goodput_gbps = 0;
  std::uint64_t fast_retx = 0;
  std::uint64_t ecn_cuts = 0;
};

Trace run(tcp::Transport transport, tcp::EcnMode ecn,
          const std::string& name) {
  sim::SimContext ctx;
  sim::Scheduler& sched = ctx.scheduler();
  net::Network network(ctx);
  net::Host& src = network.add_host("src");
  net::Host& dst = network.add_host("dst");
  net::Switch& sw = network.add_switch("sw");
  // 4x edge into a 1 Gb/s bottleneck with a step-marking queue.
  network.connect(src, sw, sim::DataRate::gbps(4), sim::microseconds(50),
                  net::make_droptail_factory(1024));
  network.connect(sw, dst, sim::DataRate::gbps(1), sim::microseconds(50),
                  net::make_dctcp_factory(128, 32));
  network.compute_routes();

  tcp::TcpConfig cfg;
  cfg.ecn = ecn;
  cfg.min_rto = sim::milliseconds(10);
  cfg.initial_rto = sim::milliseconds(10);
  tcp::TcpConnection conn(network, src, dst, 1000, 80, transport, cfg);
  conn.start(tcp::TcpSender::kUnlimited);

  Trace trace;
  trace.name = name;
  // Sample cwnd every 2 ms for 120 ms.
  for (int i = 0; i < 60; ++i) {
    sched.run_until(sim::milliseconds(2) * (i + 1));
    trace.cwnd_segments.push_back(conn.sender().cwnd_bytes() /
                                  cfg.mss);
  }
  trace.goodput_gbps = conn.sink().goodput_bps() / 1e9;
  trace.fast_retx = conn.sender().stats().fast_retransmits;
  trace.ecn_cuts = conn.sender().stats().ecn_reductions;
  return trace;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double max_v = 1;
  for (double v : values) max_v = std::max(max_v, v);
  std::string out;
  for (double v : values) {
    const int level =
        std::min(7, static_cast<int>(8.0 * v / (max_v + 1e-9)));
    out += kLevels[level];
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Congestion-window traces over 120 ms on a 1 Gb/s "
               "step-marking (K=32) bottleneck\n(one column = 2 ms; "
               "height = cwnd relative to the flavour's own max):\n\n";
  std::vector<Trace> traces;
  traces.push_back(
      run(tcp::Transport::kNewReno, tcp::EcnMode::kClassic, "newreno"));
  traces.push_back(
      run(tcp::Transport::kCubic, tcp::EcnMode::kClassic, "cubic"));
  traces.push_back(
      run(tcp::Transport::kDctcp, tcp::EcnMode::kDctcp, "dctcp"));

  for (const auto& t : traces) {
    std::cout << "  " << t.name << std::string(9 - t.name.size(), ' ')
              << "|" << sparkline(t.cwnd_segments) << "|\n";
  }
  std::cout << "\n";
  stats::Table table({"flavour", "goodput (Gb/s)", "cwnd max (seg)",
                      "fast retx", "ECN cuts"});
  for (const auto& t : traces) {
    double mx = 0;
    for (double v : t.cwnd_segments) mx = std::max(mx, v);
    table.add_row({t.name, stats::Table::num(t.goodput_gbps, 3),
                   stats::Table::num(mx, 1), std::to_string(t.fast_retx),
                   std::to_string(t.ecn_cuts)});
  }
  table.print(std::cout);
  std::cout << "\nNewReno halves on every ECE and saws deeply; CUBIC cuts "
               "to 0.7 and probes\nalong the cubic curve; DCTCP shaves "
               "proportionally and hugs the threshold.\n";
  return 0;
}
