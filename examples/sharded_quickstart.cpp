// Sharded quickstart: one small fat-tree fabric executed as a
// conservative-lookahead parallel simulation, with the shard telemetry
// stack switched on.  Try:
//
//   HWATCH_SHARDS=4 HWATCH_PROGRESS=1 ./sharded_quickstart
//   HWATCH_SHARDS=4 HWATCH_METRICS_DIR=out HWATCH_TRACE_DIR=out
//       HWATCH_FLIGHT_DIR=out HWATCH_FLIGHT_DUMP=1 ./sharded_quickstart
//
// The manifest's `shards` section, the gauge series and the merged
// trace export are byte-identical for every HWATCH_SHARDS value; only
// the per-worker timeline ("sharded_quickstart.workers.trace.json")
// and the flight dump record wall-clock behaviour.
#include <iostream>

#include "api/sharded.hpp"
#include "stats/table.hpp"

using namespace hwatch;

int main() {
  api::FatTreeScenarioConfig cfg;
  cfg.k = 4;  // 16 hosts, 8 edge shards
  cfg.link_rate = sim::DataRate::gbps(10);
  cfg.base_rtt = sim::microseconds(100);
  cfg.aqm.kind = api::AqmKind::kDctcpStep;
  cfg.aqm.buffer_packets = 250;
  cfg.aqm.mark_threshold_packets = 50;
  cfg.transport = tcp::Transport::kDctcp;
  cfg.flows_per_host = 2;
  cfg.flow_bytes = 100'000;
  cfg.duration = sim::milliseconds(20);
  cfg.seed = 7;
  cfg.run_label = "sharded_quickstart";
  cfg.collect_metrics = true;
  const api::ScenarioResults res = api::run_fat_tree_sharded(cfg);

  const auto fct = res.short_fct_cdf_ms().summarize();
  std::cout << "sharded fat-tree (k=4): " << res.records.size()
            << " flows, " << fct.count << " completed\n"
            << "  short FCT mean / p99 : " << stats::Table::num(fct.mean, 3)
            << " / " << stats::Table::num(fct.p99, 3) << " ms\n"
            << "  events simulated     : " << res.events_executed << "\n"
            << "  epochs               : "
            << res.manifest.results.find("epochs")->as_uint() << "\n"
            << "  shard imbalance      : "
            << stats::Table::num(res.shard_imbalance, 3)
            << "x (1.0 = perfectly balanced)\n";
  return 0;
}
