// Incast deep-dive: the paper's motivating pathology, epoch by epoch.
//
// 25 plain-TCP senders fire 6 synchronized 10 KB bursts at paired
// receivers across a 10 Gb/s bottleneck while 25 bulk flows keep the
// buffer loaded.  Run once without HWatch (tail losses put flows into
// 200 ms retransmission timeouts) and once with it (probe-informed
// initial windows + Next-Fit batching), printing a per-epoch breakdown.
#include <iostream>
#include <map>

#include "api/scenario.hpp"
#include "stats/table.hpp"

using namespace hwatch;

namespace {

api::ScenarioResults run(bool hwatch_on) {
  api::DumbbellScenarioConfig cfg;
  cfg.pairs = 50;
  cfg.base_rtt = sim::microseconds(100);
  cfg.core_aqm.kind = api::AqmKind::kDctcpStep;
  cfg.core_aqm.buffer_packets = 250;
  cfg.core_aqm.mark_threshold_packets = 50;
  cfg.core_aqm.byte_mode = true;
  cfg.core_aqm.mtu_bytes = 1000;
  cfg.edge_aqm = cfg.core_aqm;

  tcp::TcpConfig guest;
  guest.mss = 942;  // 1000-byte frames
  guest.ecn = tcp::EcnMode::kNone;
  guest.min_rto = sim::milliseconds(200);
  guest.initial_rto = sim::milliseconds(200);

  cfg.long_groups = {{tcp::Transport::kNewReno, guest, 25, "bulk"}};
  cfg.short_groups = {{tcp::Transport::kNewReno, guest, 25, "incast"}};
  cfg.incast.epochs = 6;
  cfg.incast.first_epoch = sim::milliseconds(100);
  cfg.incast.epoch_interval = sim::milliseconds(150);
  cfg.incast.flow_bytes = 10'000;
  cfg.duration = sim::seconds(1.0);
  cfg.seed = 7;

  if (hwatch_on) {
    cfg.hwatch_enabled = true;
    cfg.hwatch.probe_count = 10;
    cfg.hwatch.probe_span = sim::microseconds(50);
    cfg.hwatch.policy.batch_interval = sim::microseconds(50);
    cfg.hwatch.round_interval = sim::microseconds(100);
    cfg.hwatch.mss = guest.mss;
    cfg.hwatch.min_window_bytes = guest.mss;
  }
  return api::run_dumbbell(cfg);
}

void per_epoch_report(const std::string& name,
                      const api::ScenarioResults& res) {
  std::cout << "--- " << name << " ---\n";
  struct Acc {
    double fct_sum = 0;
    double fct_max = 0;
    std::size_t done = 0;
    std::size_t missing = 0;
    std::uint64_t timeouts = 0;
  };
  std::map<std::uint32_t, Acc> epochs;
  for (const auto& r : res.short_flows()) {
    Acc& a = epochs[r.epoch];
    if (r.completed) {
      ++a.done;
      a.fct_sum += r.fct_ms();
      a.fct_max = std::max(a.fct_max, r.fct_ms());
    } else {
      ++a.missing;
    }
    a.timeouts += r.timeouts;
  }
  stats::Table t({"epoch", "completed", "missing", "avg FCT(ms)",
                  "max FCT(ms)", "timeouts"});
  for (const auto& [epoch, a] : epochs) {
    t.add_row({std::to_string(epoch), std::to_string(a.done),
               std::to_string(a.missing),
               a.done ? stats::Table::num(a.fct_sum / a.done, 3) : "-",
               stats::Table::num(a.fct_max, 3),
               std::to_string(a.timeouts)});
  }
  t.print(std::cout);
  std::cout << "bottleneck drops: " << res.bottleneck_queue.dropped
            << " (data " << res.bottleneck_queue.dropped_data << ", ctrl "
            << res.bottleneck_queue.dropped_ctrl << ", probe "
            << res.bottleneck_queue.dropped_probes << ")"
            << ", marks: " << res.bottleneck_queue.ecn_marked << "\n"
            << "bulk goodput mean: "
            << stats::Table::num(
                   res.long_goodput_cdf_gbps().summarize().mean, 3)
            << " Gb/s, mean utilization: "
            << stats::Table::num(100 * res.mean_utilization(), 1) << " %\n\n";
}

}  // namespace

int main() {
  std::cout << "Incast rescue: 25 bulk + 25 incast TCP senders, 10 Gb/s "
               "dumbbell, 6 epochs of 10 KB bursts.\n\n";
  per_epoch_report("plain TCP (no HWatch)", run(false));
  per_epoch_report("TCP + HWatch", run(true));
  std::cout << "A timeout costs minRTO = 200 ms against a 100 us RTT: "
               "every avoided drop above is 3-4 orders of magnitude of "
               "latency saved.\n";
  return 0;
}
